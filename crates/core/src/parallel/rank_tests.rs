//! White-box tests of the protocol state machine: each message path is
//! driven by hand against small hand-built partitions.

use super::msg::{ConvId, Msg, Outbox};
use super::rank::{RankState, StartResult};
use crate::switch::RejectReason;
use edgeswitch_graph::{Edge, PartitionStore, Partitioner};

fn conv(initiator: u32, seq: u64) -> ConvId {
    ConvId { initiator, seq }
}

/// Two ranks under HP-D(2): even labels on rank 0, odd labels on rank 1.
fn two_rank_world(edges0: &[(u64, u64)], edges1: &[(u64, u64)]) -> (RankState, RankState) {
    let part = Partitioner::hash_division(2);
    let mk = |rank: usize, edges: &[(u64, u64)]| {
        let mut store = PartitionStore::new(rank);
        for &(a, b) in edges {
            let e = Edge::new(a, b);
            assert_eq!(part.owner(e.src()), rank, "edge {e} misassigned in test");
            store.insert(e);
        }
        RankState::new(rank, part.clone(), store, 99)
    };
    (mk(0, edges0), mk(1, edges1))
}

/// Deliver every outbox message, tracking which rank emitted it.
fn pump(states: &mut [&mut RankState], src: usize, out: &mut Outbox) {
    let mut queue: Vec<(usize, usize, Msg)> = Vec::new();
    while let Some((dst, msg)) = out.pop() {
        queue.push((dst, src, msg));
    }
    while !queue.is_empty() {
        let (dst, from, msg) = queue.remove(0);
        let mut next = Outbox::new();
        states[dst].handle(from, msg, &mut next);
        while let Some((d2, m2)) = next.pop() {
            queue.push((d2, dst, m2));
        }
    }
}

#[test]
fn validator_reserves_and_releases_potential_edges() {
    let (mut r0, _r1) = two_rank_world(&[(0, 2), (4, 6)], &[]);
    let mut out = Outbox::new();
    let c = conv(1, 1);
    // Rank 0 validates edge (0, 8): free -> Ok.
    r0.handle(
        1,
        Msg::Validate {
            conv: c,
            edge: Edge::new(0, 8),
        },
        &mut out,
    );
    let (dst, reply) = out.pop().unwrap();
    assert_eq!(dst, 1);
    assert!(matches!(reply, Msg::ValidateOk { .. }));
    // The same edge is now a potential edge: a second validation fails.
    r0.handle(
        1,
        Msg::Validate {
            conv: conv(1, 2),
            edge: Edge::new(0, 8),
        },
        &mut out,
    );
    assert!(matches!(out.pop().unwrap().1, Msg::ValidateFail { .. }));
    // Release frees it again.
    r0.handle(
        1,
        Msg::Release {
            conv: c,
            edge: Edge::new(0, 8),
        },
        &mut out,
    );
    r0.handle(
        1,
        Msg::Validate {
            conv: conv(1, 3),
            edge: Edge::new(0, 8),
        },
        &mut out,
    );
    assert!(matches!(out.pop().unwrap().1, Msg::ValidateOk { .. }));
}

#[test]
fn validator_rejects_existing_edge() {
    let (mut r0, _r1) = two_rank_world(&[(0, 2)], &[]);
    let mut out = Outbox::new();
    r0.handle(
        1,
        Msg::Validate {
            conv: conv(1, 1),
            edge: Edge::new(0, 2),
        },
        &mut out,
    );
    assert!(matches!(out.pop().unwrap().1, Msg::ValidateFail { .. }));
}

#[test]
fn commit_add_materializes_reserved_edge() {
    let (mut r0, _r1) = two_rank_world(&[], &[]);
    let mut out = Outbox::new();
    let c = conv(1, 1);
    let e = Edge::new(2, 4);
    r0.handle(1, Msg::Validate { conv: c, edge: e }, &mut out);
    assert!(matches!(out.pop().unwrap().1, Msg::ValidateOk { .. }));
    assert_eq!(r0.edge_count(), 0, "potential edges are not yet real");
    r0.handle(1, Msg::CommitAdd { conv: c, edge: e }, &mut out);
    let (dst, ack) = out.pop().unwrap();
    assert_eq!(dst, 1);
    assert!(matches!(ack, Msg::CommitAck { .. }));
    assert_eq!(r0.edge_count(), 1);
    assert!(r0.store().contains(e));
}

#[test]
fn proposal_on_empty_partition_aborts_contended() {
    let (mut r0, _r1) = two_rank_world(&[], &[]);
    let mut out = Outbox::new();
    r0.handle(
        1,
        Msg::Propose {
            conv: conv(1, 1),
            e1: Edge::new(1, 3),
        },
        &mut out,
    );
    match out.pop().unwrap().1 {
        Msg::Abort { reason, .. } => assert_eq!(reason, RejectReason::Contended),
        other => panic!("expected Abort, got {other:?}"),
    }
}

#[test]
fn full_global_switch_between_two_ranks() {
    // Rank 0 owns (0,2); rank 1 owns (1,3). A cross or straight switch
    // yields replacements owned by rank 0 and rank 1 in all cases; run
    // the whole conversation by hand.
    let (mut r0, mut r1) = two_rank_world(&[(0, 2)], &[(1, 3)]);
    r0.begin_step(1, &[0.5, 0.5]);
    r1.begin_step(0, &[0.5, 0.5]);
    let mut out = Outbox::new();
    // Drive r0 until it manages to start (its partner draw may pick
    // itself and abort on the self-propose path; retry).
    let mut started = false;
    for _ in 0..64 {
        match r0.try_start(&mut out) {
            StartResult::Started => {
                started = true;
                let mut states = [&mut r0, &mut r1];
                pump(&mut states, 0, &mut out);
                if states[0].step_done() {
                    break;
                }
            }
            StartResult::Idle => break,
            StartResult::Blocked => panic!("nothing should block here"),
        }
    }
    assert!(started);
    assert!(r0.step_done(), "rank 0 must finish its single operation");
    // Books balance: 2 edges total, degree multiset preserved.
    assert_eq!(r0.edge_count() + r1.edge_count(), 2);
    let (s0, _t0, st0) = r0.into_parts();
    let (s1, _t1, st1) = r1.into_parts();
    assert_eq!(st0.performed, 1);
    assert_eq!(st1.performed, 0);
    let mut endpoints: Vec<u64> = s0
        .edges()
        .chain(s1.edges())
        .flat_map(|e| [e.src(), e.dst()])
        .collect();
    endpoints.sort_unstable();
    assert_eq!(endpoints, vec![0, 1, 2, 3]);
}

#[test]
fn abort_releases_first_edge_for_reuse() {
    let (mut r0, mut r1) = two_rank_world(&[(0, 2)], &[]);
    r0.begin_step(1, &[0.0, 1.0]); // partner is always rank 1
    r1.begin_step(0, &[0.0, 1.0]);
    let mut out = Outbox::new();
    assert_eq!(r0.try_start(&mut out), StartResult::Started);
    let mut states = [&mut r0, &mut r1];
    // Rank 1 has no edges: Contended abort flows back, releasing e1.
    pump(&mut states, 0, &mut out);
    assert!(!r0.step_done(), "operation must be retried, not completed");
    assert_eq!(r0.stats.aborts_contended, 1);
    // e1 must be free again: the next start succeeds.
    assert_eq!(r0.try_start(&mut out), StartResult::Started);
}

#[test]
fn begin_step_resets_quota_accounting() {
    let (mut r0, _r1) = two_rank_world(&[(0, 2), (4, 6)], &[]);
    r0.begin_step(0, &[1.0, 0.0]);
    assert!(r0.step_done());
    r0.begin_step(5, &[1.0, 0.0]);
    assert!(!r0.step_done());
}
