//! White-box tests of the protocol state machine: each message path is
//! driven by hand against small hand-built partitions.

use super::harness::{probability_vector, StepHarness};
use super::msg::{ConvId, Msg, Outbox};
use super::rank::{RankState, StartResult};
use super::sim::simulate_parallel;
use crate::config::{ParallelConfig, StepSize};
use crate::switch::RejectReason;
use edgeswitch_graph::generators::erdos_renyi_gnm;
use edgeswitch_graph::store::build_stores;
use edgeswitch_graph::{Edge, Graph, PartitionStore, Partitioner, SchemeKind};
use std::collections::VecDeque;

fn conv(initiator: u32, seq: u64) -> ConvId {
    ConvId { initiator, seq }
}

/// Two ranks under HP-D(2): even labels on rank 0, odd labels on rank 1,
/// stop-and-wait window (the classic protocol).
fn two_rank_world(edges0: &[(u64, u64)], edges1: &[(u64, u64)]) -> (RankState, RankState) {
    two_rank_world_windowed(edges0, edges1, 1)
}

/// [`two_rank_world`] with an explicit pipelining window.
fn two_rank_world_windowed(
    edges0: &[(u64, u64)],
    edges1: &[(u64, u64)],
    window: usize,
) -> (RankState, RankState) {
    let part = Partitioner::hash_division(2);
    let mk = |rank: usize, edges: &[(u64, u64)]| {
        let mut store = PartitionStore::new(rank);
        for &(a, b) in edges {
            let e = Edge::new(a, b);
            assert_eq!(part.owner(e.src()), rank, "edge {e} misassigned in test");
            store.insert(e);
        }
        RankState::new(rank, part.clone(), store, 99, window)
    };
    (mk(0, edges0), mk(1, edges1))
}

/// Deliver every outbox message, tracking which rank emitted it.
fn pump(states: &mut [&mut RankState], src: usize, out: &mut Outbox) {
    let mut queue: Vec<(usize, usize, Msg)> = Vec::new();
    while let Some((dst, msg)) = out.pop() {
        queue.push((dst, src, msg));
    }
    while !queue.is_empty() {
        let (dst, from, msg) = queue.remove(0);
        let mut next = Outbox::new();
        states[dst].handle(from, msg, &mut next);
        while let Some((d2, m2)) = next.pop() {
            queue.push((d2, dst, m2));
        }
    }
}

#[test]
fn validator_reserves_and_releases_potential_edges() {
    let (mut r0, _r1) = two_rank_world(&[(0, 2), (4, 6)], &[]);
    let mut out = Outbox::new();
    let c = conv(1, 1);
    // Rank 0 validates edge (0, 8): free -> Ok.
    r0.handle(
        1,
        Msg::Validate {
            conv: c,
            edge: Edge::new(0, 8),
        },
        &mut out,
    );
    let (dst, reply) = out.pop().unwrap();
    assert_eq!(dst, 1);
    assert!(matches!(reply, Msg::ValidateOk { .. }));
    // The same edge is now a potential edge: a second validation fails.
    r0.handle(
        1,
        Msg::Validate {
            conv: conv(1, 2),
            edge: Edge::new(0, 8),
        },
        &mut out,
    );
    assert!(matches!(out.pop().unwrap().1, Msg::ValidateFail { .. }));
    // Release frees it again.
    r0.handle(
        1,
        Msg::Release {
            conv: c,
            edge: Edge::new(0, 8),
        },
        &mut out,
    );
    r0.handle(
        1,
        Msg::Validate {
            conv: conv(1, 3),
            edge: Edge::new(0, 8),
        },
        &mut out,
    );
    assert!(matches!(out.pop().unwrap().1, Msg::ValidateOk { .. }));
}

#[test]
fn validator_rejects_existing_edge() {
    let (mut r0, _r1) = two_rank_world(&[(0, 2)], &[]);
    let mut out = Outbox::new();
    r0.handle(
        1,
        Msg::Validate {
            conv: conv(1, 1),
            edge: Edge::new(0, 2),
        },
        &mut out,
    );
    assert!(matches!(out.pop().unwrap().1, Msg::ValidateFail { .. }));
}

#[test]
fn commit_add_materializes_reserved_edge() {
    let (mut r0, _r1) = two_rank_world(&[], &[]);
    let mut out = Outbox::new();
    let c = conv(1, 1);
    let e = Edge::new(2, 4);
    r0.handle(1, Msg::Validate { conv: c, edge: e }, &mut out);
    assert!(matches!(out.pop().unwrap().1, Msg::ValidateOk { .. }));
    assert_eq!(r0.edge_count(), 0, "potential edges are not yet real");
    r0.handle(1, Msg::CommitAdd { conv: c, edge: e }, &mut out);
    let (dst, ack) = out.pop().unwrap();
    assert_eq!(dst, 1);
    assert!(matches!(ack, Msg::CommitAck { .. }));
    assert_eq!(r0.edge_count(), 1);
    assert!(r0.store().contains(e));
}

#[test]
fn proposal_on_empty_partition_aborts_contended() {
    let (mut r0, _r1) = two_rank_world(&[], &[]);
    let mut out = Outbox::new();
    r0.handle(
        1,
        Msg::Propose {
            conv: conv(1, 1),
            e1: Edge::new(1, 3),
        },
        &mut out,
    );
    match out.pop().unwrap().1 {
        Msg::Abort { reason, .. } => assert_eq!(reason, RejectReason::Contended),
        other => panic!("expected Abort, got {other:?}"),
    }
}

#[test]
fn full_global_switch_between_two_ranks() {
    // Rank 0 owns (0,2); rank 1 owns (1,3). A cross or straight switch
    // yields replacements owned by rank 0 and rank 1 in all cases; run
    // the whole conversation by hand.
    let (mut r0, mut r1) = two_rank_world(&[(0, 2)], &[(1, 3)]);
    r0.begin_step(1, &[0.5, 0.5]);
    r1.begin_step(0, &[0.5, 0.5]);
    let mut out = Outbox::new();
    // Drive r0 until it manages to start (its partner draw may pick
    // itself and abort on the self-propose path; retry).
    let mut started = false;
    for _ in 0..64 {
        match r0.try_start(&mut out) {
            StartResult::Started(_) => {
                started = true;
                let mut states = [&mut r0, &mut r1];
                pump(&mut states, 0, &mut out);
                if states[0].step_done() {
                    break;
                }
            }
            StartResult::Idle => break,
            StartResult::Blocked => panic!("nothing should block here"),
        }
    }
    assert!(started);
    assert!(r0.step_done(), "rank 0 must finish its single operation");
    // Books balance: 2 edges total, degree multiset preserved.
    assert_eq!(r0.edge_count() + r1.edge_count(), 2);
    let (s0, _t0, st0, _) = r0.into_parts();
    let (s1, _t1, st1, _) = r1.into_parts();
    assert_eq!(st0.performed, 1);
    assert_eq!(st1.performed, 0);
    let mut endpoints: Vec<u64> = s0
        .edges()
        .chain(s1.edges())
        .flat_map(|e| [e.src(), e.dst()])
        .collect();
    endpoints.sort_unstable();
    assert_eq!(endpoints, vec![0, 1, 2, 3]);
}

#[test]
fn abort_releases_first_edge_for_reuse() {
    let (mut r0, mut r1) = two_rank_world(&[(0, 2)], &[]);
    r0.begin_step(1, &[0.0, 1.0]); // partner is always rank 1
    r1.begin_step(0, &[0.0, 1.0]);
    let mut out = Outbox::new();
    assert_eq!(r0.try_start(&mut out), StartResult::Started(1));
    let mut states = [&mut r0, &mut r1];
    // Rank 1 has no edges: Contended abort flows back, releasing e1.
    pump(&mut states, 0, &mut out);
    assert!(!r0.step_done(), "operation must be retried, not completed");
    assert_eq!(r0.stats.aborts_contended, 1);
    // e1 must be free again: the next start succeeds.
    assert_eq!(r0.try_start(&mut out), StartResult::Started(1));
}

/// Deliver one rank's outbox into a world FIFO queue (self-addressed
/// messages re-enter in place), mirroring the drivers' routing.
fn route(
    states: &mut [RankState],
    src: usize,
    out: &mut Outbox,
    queue: &mut VecDeque<(usize, usize, Msg)>,
) {
    while let Some((dst, msg)) = out.pop() {
        if dst == src {
            states[src].handle(src, msg, out);
        } else {
            queue.push_back((dst, src, msg));
        }
    }
}

/// Seeded property test: however the window pipelines conversations,
/// no two concurrently in-flight conversations of a rank ever hold a
/// reservation on the same first edge, occupancy respects the bound,
/// and every in-flight first edge is actually locked.
#[test]
fn concurrent_conversations_hold_disjoint_reservations() {
    const WINDOW: usize = 4;
    let edges0: Vec<(u64, u64)> = (0..60).map(|i| (2 * i, 2 * i + 6)).collect();
    let edges1: Vec<(u64, u64)> = (0..60).map(|i| (2 * i + 1, 2 * i + 7)).collect();
    let (r0, r1) = two_rank_world_windowed(&edges0, &edges1, WINDOW);
    let mut states = [r0, r1];
    for st in &mut states {
        st.begin_step(25, &[0.5, 0.5]);
    }

    let check = |states: &[RankState]| {
        for st in states {
            let e1s = st.inflight_e1s();
            assert!(e1s.len() <= WINDOW, "window bound violated");
            let reserved = st.reserved_edges();
            let mut seen = std::collections::HashSet::new();
            for e in &e1s {
                assert!(seen.insert(*e), "two in-flight conversations lock {e}");
                // The reservation is dropped by the commit itself (the
                // edge leaves the store at the same instant), possibly
                // before the Done/acks retire the conversation — so the
                // lock need only cover e1 while it is still switchable.
                if st.store().contains(*e) {
                    assert!(reserved.contains(e), "live in-flight e1 {e} not reserved");
                }
            }
        }
    };

    let mut queue: VecDeque<(usize, usize, Msg)> = VecDeque::new();
    let mut out = Outbox::new();
    for sweep in 0..100_000 {
        // Fill each rank's window, checking the property after every
        // state-machine interaction.
        let mut any_started = false;
        for i in 0..states.len() {
            let mut starts = 0;
            while starts < WINDOW {
                match states[i].try_start(&mut out) {
                    StartResult::Started(_) => {
                        starts += 1;
                        any_started = true;
                        route(&mut states, i, &mut out, &mut queue);
                        check(&states);
                    }
                    _ => break,
                }
            }
        }
        // Deliver one queued message, then re-check.
        if let Some((dst, src, msg)) = queue.pop_front() {
            states[dst].handle(src, msg, &mut out);
            route(&mut states, dst, &mut out, &mut queue);
            check(&states);
        } else if !any_started {
            break;
        }
        assert!(sweep < 99_999, "world did not quiesce");
    }
    assert!(states.iter().all(|st| st.step_done()));
    assert!(
        states.iter().map(|st| st.stats.performed).sum::<u64>() > 0,
        "the pipelined world must perform switches"
    );
}

/// With the local fast path on (the default), self-partner switches
/// mutate the store inline without a conversation record. Seeded
/// property: however those inline applies interleave with pipelined
/// protocol traffic, the reservation books stay consistent — no
/// promised (potential) edge ever materializes behind its validator's
/// back, no edge is simultaneously locked and promised, and in-flight
/// first-edge locks stay disjoint.
///
/// The edge lists are mixed-parity on purpose: under HP-D(2) a
/// self-partner recombination can produce a foreign-owned replacement,
/// so this world exercises both the pure-local inline apply and the
/// fast path's fall back onto the validation protocol.
#[test]
fn fastpath_applies_respect_reservation_disjointness() {
    const WINDOW: usize = 4;
    let edges0: Vec<(u64, u64)> = (0..60).map(|i| (2 * i, 2 * i + 3)).collect();
    let edges1: Vec<(u64, u64)> = (0..60).map(|i| (2 * i + 1, 2 * i + 4)).collect();
    let (r0, r1) = two_rank_world_windowed(&edges0, &edges1, WINDOW);
    let mut states = [r0, r1];
    for st in &mut states {
        st.begin_step(40, &[0.5, 0.5]);
    }

    let check = |states: &[RankState]| {
        for st in states {
            let reserved = st.reserved_edges();
            for e in st.potential_edges() {
                assert!(
                    !st.store().contains(e),
                    "promised edge {e} materialized behind its validator's back"
                );
                assert!(
                    !reserved.contains(&e),
                    "edge {e} is both locked (existing) and promised (future)"
                );
            }
            let mut seen = std::collections::HashSet::new();
            for e in st.inflight_e1s() {
                assert!(seen.insert(e), "two in-flight conversations lock {e}");
            }
        }
    };

    let mut queue: VecDeque<(usize, usize, Msg)> = VecDeque::new();
    let mut out = Outbox::new();
    for sweep in 0..100_000 {
        let mut any_started = false;
        for i in 0..states.len() {
            let mut starts = 0;
            while starts < WINDOW {
                match states[i].try_start(&mut out) {
                    StartResult::Started(_) => {
                        starts += 1;
                        any_started = true;
                        route(&mut states, i, &mut out, &mut queue);
                        check(&states);
                    }
                    _ => break,
                }
            }
        }
        if let Some((dst, src, msg)) = queue.pop_front() {
            states[dst].handle(src, msg, &mut out);
            route(&mut states, dst, &mut out, &mut queue);
            check(&states);
        } else if !any_started {
            break;
        }
        assert!(sweep < 99_999, "world did not quiesce");
    }
    assert!(states.iter().all(|st| st.step_done()));
    let fastpath: u64 = states.iter().map(|st| st.stats.performed_fastpath).sum();
    let local: u64 = states.iter().map(|st| st.stats.performed_local).sum();
    assert!(
        fastpath > 0,
        "the fast path must fire in a half-local world"
    );
    assert!(
        fastpath <= local,
        "fast-path switches are a subset of local switches"
    );
}

/// A stop-and-wait reference driver: the pre-window world loop (one
/// `try_start` per rank per sweep, strictly one conversation in flight)
/// re-implemented against the public state-machine surface.
fn stop_and_wait_reference(
    graph: &Graph,
    t: u64,
    cfg: &ParallelConfig,
) -> (Vec<super::rank::RankStats>, Vec<(u64, u64)>) {
    let mut rng = cfg.root_rng();
    let part = Partitioner::build(cfg.scheme, graph, cfg.processors, &mut rng);
    let stores = build_stores(graph, &part);
    let mut states: Vec<RankState> = stores
        .into_iter()
        .enumerate()
        .map(|(rank, store)| RankState::new(rank, part.clone(), store, cfg.seed, 1))
        .collect();
    let harness = StepHarness::new(t, cfg);
    let mut queue: VecDeque<(usize, usize, Msg)> = VecDeque::new();
    let mut out = Outbox::new();
    for step in 0..harness.steps() {
        let counts: Vec<u64> = states.iter().map(|st| st.edge_count()).collect();
        let q = probability_vector(&counts, harness.uniform_q());
        let quotas = edgeswitch_dist::multinomial_owned_world(
            harness.step_ops(step),
            &q,
            states.iter_mut().map(|st| st.rng_mut()),
        );
        for (st, &qi) in states.iter_mut().zip(&quotas) {
            st.begin_step(qi, &q);
        }
        loop {
            while let Some((dst, src, msg)) = queue.pop_front() {
                states[dst].handle(src, msg, &mut out);
                route(&mut states, dst, &mut out, &mut queue);
            }
            let mut any_started = false;
            for i in 0..states.len() {
                if matches!(states[i].try_start(&mut out), StartResult::Started(_)) {
                    any_started = true;
                    route(&mut states, i, &mut out, &mut queue);
                }
            }
            if !any_started && queue.is_empty() {
                break;
            }
        }
    }
    let mut stats = Vec::new();
    let mut edges: Vec<(u64, u64)> = Vec::new();
    for st in states {
        let (store, _tracker, s, _) = st.into_parts();
        stats.push(s);
        edges.extend(store.edges().map(|e| (e.src(), e.dst())));
    }
    edges.sort_unstable();
    (stats, edges)
}

/// `window = 1` must reproduce the pre-window engine's outcome stream
/// exactly: same per-rank statistics, same final edge set as the
/// stop-and-wait reference driver, under several seeds and schemes.
#[test]
fn window_one_is_bit_identical_to_stop_and_wait() {
    for (seed, p, t, scheme) in [
        (4242u64, 6usize, 1200u64, SchemeKind::HashUniversal),
        (7, 3, 900, SchemeKind::Consecutive),
    ] {
        let mut rng = edgeswitch_dist::root_rng(seed);
        let g = erdos_renyi_gnm(400, 2000, &mut rng);
        let cfg = ParallelConfig::new(p)
            .with_scheme(scheme)
            .with_step_size(StepSize::FractionOfT(10))
            .with_seed(seed ^ 0x55)
            .with_window(1);
        let (ref_stats, ref_edges) = stop_and_wait_reference(&g, t, &cfg);
        let out = simulate_parallel(&g, t, &cfg);
        assert_eq!(
            out.per_rank, ref_stats,
            "per-rank stream diverged (seed {seed})"
        );
        let mut sim_edges: Vec<(u64, u64)> =
            out.graph.edges().map(|e| (e.src(), e.dst())).collect();
        sim_edges.sort_unstable();
        assert_eq!(
            sim_edges, ref_edges,
            "final edge set diverged (seed {seed})"
        );
    }
}

/// Seeded rollback property: a speculative batch whose every entry is
/// rejected must restore the initiator *exactly* — the edge pool in the
/// same order (the undo log replays swap-remove positions LIFO), and
/// empty reservation and potential sets. The world is built so every
/// recombination yields exactly one foreign-owned replacement: edges
/// `(4i, 4i+1)` pair an even `src` (rank 0 under HP-D(2)) with an odd
/// endpoint, so crossing any two produces one even-src and one odd-src
/// edge — always the speculative `f_local` shape, never a fully-local
/// inline apply that would legitimately survive the rollback.
#[test]
fn all_reject_batch_verdict_restores_store_exactly() {
    let edges0: Vec<(u64, u64)> = (0..12).map(|i| (4 * i, 4 * i + 1)).collect();
    let (r0, _r1) = two_rank_world_windowed(&edges0, &[], 16);
    let mut r0 = r0.with_spec_batch(8);
    r0.begin_step(8, &[1.0, 0.0]); // partner draw is always self

    let pre_edges: Vec<Edge> = r0.store().edges().collect();
    let pre_reserved = r0.reserved_edges();
    assert!(pre_reserved.is_empty());
    assert!(r0.potential_edges().is_empty());

    let mut out = Outbox::new();
    assert!(matches!(r0.try_start(&mut out), StartResult::Started(_)));

    // Every outgoing message must be a coalesced BatchPropose to the
    // foreign owner; collect its conversations and refuse them all.
    let mut verdicts: Vec<(ConvId, bool)> = Vec::new();
    while let Some((dst, msg)) = out.pop() {
        assert_eq!(dst, 1, "speculation only talks to the foreign owner");
        match msg {
            Msg::BatchPropose { reqs } => {
                verdicts.extend(reqs.iter().map(|r| (r.conv, false)));
            }
            other => panic!("unexpected message {other:?}"),
        }
    }
    assert!(!verdicts.is_empty(), "no speculation was ever attempted");
    // The batch really is applied optimistically: the store has changed
    // and the removed originals are parked as potential edges.
    assert_ne!(r0.store().edges().collect::<Vec<_>>(), pre_edges);
    assert!(!r0.potential_edges().is_empty());

    r0.handle(
        1,
        Msg::BatchVerdict {
            verdicts: verdicts.clone(),
        },
        &mut out,
    );
    assert!(out.pop().is_none(), "rollback sends nothing");

    // Exact restoration: same edges in the same pool order, books clean.
    assert_eq!(r0.store().edges().collect::<Vec<_>>(), pre_edges);
    assert!(r0.reserved_edges().is_empty());
    assert!(r0.potential_edges().is_empty());
    assert_eq!(r0.inflight_len(), 0, "undo log must be drained");
    assert_eq!(r0.stats.spec_rolled_back, verdicts.len() as u64);
    assert_eq!(r0.stats.spec_committed, 0);
    assert_eq!(r0.stats.performed, 0);
    assert!(!r0.step_done(), "rejected ops must be retried, not lost");
}

/// Speculation under an adversarial partition (Section 5.2): relabel a
/// graph so the highest-degree vertices pile onto one HP-D rank, then
/// run with batching on. The hot rank forces heavy cross-rank
/// replacement traffic — speculation must still keep the books exact.
#[test]
fn speculation_survives_adversarial_partitions() {
    let mut rng = edgeswitch_dist::root_rng(17);
    let g = erdos_renyi_gnm(300, 1500, &mut rng);
    let p = 4;
    let relab = edgeswitch_graph::partition::adversary::division_worst_case(&g, p, 1);
    let h = relab.apply(&g);
    let t = 2_000;
    let cfg = ParallelConfig::new(p)
        .with_scheme(SchemeKind::HashDivision)
        .with_step_size(StepSize::FractionOfT(8))
        .with_seed(909)
        .with_spec_batch(8);
    let on = simulate_parallel(&h, t, &cfg);
    on.graph.check_invariants().unwrap();
    assert_eq!(on.graph.degree_sequence(), h.degree_sequence());
    assert_eq!(on.performed() + on.forfeited(), t);
    let committed: u64 = on.per_rank.iter().map(|s| s.spec_committed).sum();
    assert!(committed > 0, "speculation never engaged on the hot graph");
    // The per-switch path on the same adversarial layout stays intact.
    let off = simulate_parallel(&h, t, &cfg.clone().with_spec_batch(1));
    off.graph.check_invariants().unwrap();
    assert_eq!(off.graph.degree_sequence(), h.degree_sequence());
    assert_eq!(off.performed() + off.forfeited(), t);
    assert!(off.per_rank.iter().all(|s| s.spec_committed == 0));
}

#[test]
fn begin_step_resets_quota_accounting() {
    let (mut r0, _r1) = two_rank_world(&[(0, 2), (4, 6)], &[]);
    r0.begin_step(0, &[1.0, 0.0]);
    assert!(r0.step_done());
    r0.begin_step(5, &[1.0, 0.0]);
    assert!(!r0.step_done());
}
