//! The per-processor state machine of the distributed edge-switch
//! protocol (Section 4.4, generalized).
//!
//! # Protocol
//!
//! Each switch operation is a *conversation* between up to four ranks:
//!
//! - the **initiator** `P_i`, which samples its first edge `e1 ∈ E_i`,
//!   picks a partner with probability `q_j = |E_j|/|E|`, and sends
//!   `Propose`;
//! - the **partner** `P_j`, which samples the second edge `e2 ∈ E_j`,
//!   flips the straight/cross coin, computes the replacement edges, and
//!   orchestrates validation and commit;
//! - the **owners** of the two replacement edges, which check for
//!   parallel edges and reserve the replacements as *potential edges*.
//!
//! The paper's exposition tracks one third-party `P_k`; with reduced
//! adjacency lists *both* replacement edges may land on third parties
//! (`min(u1,v2)` and `min(u2,v1)` can each be foreign), so this
//! implementation validates each replacement at its own owner — the same
//! chain, generalized to two validators.
//!
//! Safety properties maintained:
//! - **reserve-validate-commit**: no graph mutation happens until every
//!   replacement edge is reserved at its owner, so an abort never needs
//!   to roll back an applied update;
//! - **potential edges** (Section 4.5, issue 1): a reserved replacement
//!   blocks any concurrent conversation from creating the same edge;
//! - **edge locking**: `e1`/`e2` stay in `reserved` while in flight, so
//!   no two simultaneous conversations can switch the same edge;
//! - **completion acks**: the partner reports `Done` only after every
//!   participant acknowledged its commit, so a rank that has finished its
//!   own quota is guaranteed to have no lingering obligations.
//!
//! # Pipelining window
//!
//! A rank may have up to `window` *own* conversations in flight at once
//! (plus any number it serves as partner or validator). The reservation
//! machinery above is what makes this safe: every conversation locks its
//! first edge in `reserved` before proposing, and every replacement edge
//! is parked in `potential` before any commit, so two concurrent
//! conversations can never touch the same existing edge or create the
//! same new one — regardless of how many are open. A start attempt whose
//! samples all land on reserved edges parks ([`StartResult::Blocked`])
//! and is retried after the next message instead of stalling the rank.
//! With `window == 1` the machine degenerates to the strictly serial
//! initiate-wait-complete protocol of the paper's exposition.
//!
//! The state machine is *pure*: it consumes events and emits messages
//! into an [`Outbox`]; drivers (threaded, deterministic, or
//! discrete-event) own delivery. A self-addressed message is delivered
//! in place by the driver, which is how local switches reuse the same
//! code path with zero transport messages.
//!
//! # Local fast path
//!
//! When the partner draw lands on the initiating rank itself, the whole
//! conversation is rank-local: both old edges come from the local store
//! and — unless a replacement endpoint hashes to a foreign partition —
//! the entire sample→legality→apply chain touches only local state. The
//! fast path (on by default, see
//! [`ParallelConfig::local_fastpath`](crate::config::ParallelConfig))
//! executes that chain inline in [`RankState::try_start`] instead of
//! bouncing `Propose`/`Validate`/`Commit` messages to itself: no
//! [`InFlight`] or [`PartnerConv`] entry, no outbox traffic, no message
//! dispatch. RNG draw order and store mutation order are exactly those
//! of the protocol path, so seeded runs are bit-identical with the fast
//! path on or off (enforced by the conformance suite).

use super::msg::{ConvId, Msg, MsgKind, Outbox};
use crate::obs::{GaugeKind, Obs, Phase};
use crate::switch::{flip_kind, recombine, Recombination, RejectReason};
use crate::visit::VisitTracker;
use edgeswitch_dist::{rank_block_rng, BlockRng64};
use edgeswitch_graph::hashing::{FxHashMap, FxHashSet};
use edgeswitch_graph::{Edge, OrientedEdge, PartitionStore, Partitioner};
use rand::Rng;

/// Attempts to sample an unreserved edge before declaring contention.
const SAMPLE_ATTEMPTS: usize = 64;
/// Consecutive aborts of one operation before it is forfeited (guards
/// against degenerate graphs where no legal switch exists).
const MAX_CONSECUTIVE_ABORTS: u64 = 100_000;

/// Result of asking a rank to begin its next own operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartResult {
    /// An operation was initiated (messages may be queued).
    Started,
    /// Nothing to start: quota exhausted or the conversation window is
    /// full.
    Idle,
    /// Every sampled edge is locked by in-flight conversations; retry
    /// after the next message.
    Blocked,
}

/// Per-rank statistics of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Operations completed as initiator.
    pub performed: u64,
    /// ... of which both edges were local.
    pub performed_local: u64,
    /// ... of which the partner was remote.
    pub performed_global: u64,
    /// ... of which the zero-message local fast path applied the switch
    /// inline (a subset of `performed_local`; `0` when the fast path is
    /// disabled).
    pub performed_fastpath: u64,
    /// Aborts: replacement would be a self-loop.
    pub aborts_loop: u64,
    /// Aborts: switch would be useless.
    pub aborts_useless: u64,
    /// Aborts: replacement edge already exists/reserved.
    pub aborts_parallel: u64,
    /// Aborts: edges locked by concurrent operations.
    pub aborts_contended: u64,
    /// Operations given up after exhausting the consecutive-abort budget.
    pub forfeited: u64,
    /// Proposals served as partner.
    pub proposals_served: u64,
    /// Validation requests served as owner.
    pub validations_served: u64,
}

impl RankStats {
    /// Total aborts across reasons.
    pub fn aborts(&self) -> u64 {
        self.aborts_loop + self.aborts_useless + self.aborts_parallel + self.aborts_contended
    }
}

/// One of the initiator's in-flight operations (keyed by [`ConvId`]).
#[derive(Clone, Copy, Debug)]
struct InFlight {
    e1: Edge,
    partner: usize,
    /// Observation stamp of the proposal (0 when unobserved); the
    /// `Propose` round-trip histogram records whole-conversation
    /// lifetimes from it.
    started_ns: u64,
}

/// A conversation this rank orchestrates as partner.
#[derive(Clone, Copy, Debug)]
struct PartnerConv {
    initiator: usize,
    e1: Edge,
    e2: Edge,
    /// Replacement edges.
    fs: [Edge; 2],
    /// Per-replacement validation state.
    fstate: [FState; 2],
    /// Outstanding remote validation replies.
    awaiting: usize,
    /// Set once any validation failed; the conversation aborts when the
    /// last outstanding reply arrives.
    failed: bool,
    /// Outstanding remote commit acknowledgements.
    acks_needed: usize,
    /// Observation stamp of the `Validate` fan-out (0 = none sent).
    validate_sent_ns: u64,
    /// Observation stamp of the commit fan-out (0 = all local).
    commit_sent_ns: u64,
}

/// Validation state of one replacement edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FState {
    /// Owned here; reserved in the local potential set.
    LocalReserved,
    /// Validation request sent to the remote owner.
    RemotePending,
    /// Remote owner reserved it.
    RemoteReserved,
    /// Rejected (would create a parallel edge).
    Failed,
}

/// One processor's complete protocol state.
pub struct RankState {
    rank: usize,
    part: Partitioner,
    store: PartitionStore,
    /// Existing edges locked by in-flight conversations.
    reserved: FxHashSet<Edge>,
    /// Replacement edges reserved but not yet materialized.
    potential: FxHashSet<Edge>,
    /// Cumulative partner-selection distribution (refreshed per step).
    cumq: Vec<f64>,
    remaining: u64,
    /// Bound on concurrently in-flight own conversations (≥ 1).
    window: usize,
    /// Commit rank-local switches inline instead of routing
    /// self-addressed protocol messages (see the module's *Local fast
    /// path* section). Outcomes are bit-identical either way.
    fastpath: bool,
    /// Own conversations currently in flight, up to `window` of them.
    inflight: FxHashMap<ConvId, InFlight>,
    consecutive_aborts: u64,
    conv_seq: u64,
    serving: FxHashMap<ConvId, PartnerConv>,
    /// Own operations whose local update is applied but whose final
    /// `Done` confirmation is still outstanding (the initiator pipelines
    /// its next operation; end-of-step waits for these).
    pending_done: FxHashSet<ConvId>,
    /// This rank's PRNG stream, block-buffered: per-step randomness is
    /// bulk-drawn a block of raw words at a time while preserving draw
    /// order exactly, so outcomes stay bit-identical to the unbuffered
    /// stream.
    rng: BlockRng64,
    /// Visit tracking over this partition's initial edges.
    pub tracker: VisitTracker,
    /// Run statistics.
    pub stats: RankStats,
    /// Observation context (no-op unless a driver attaches a probe via
    /// [`RankState::with_obs`]). Probes only read — they never touch the
    /// RNG or the protocol — so observed runs stay bit-identical.
    obs: Obs,
}

impl RankState {
    /// Build the state for `rank` from its partition store, allowing up
    /// to `window` concurrently in-flight own conversations.
    pub fn new(
        rank: usize,
        part: Partitioner,
        store: PartitionStore,
        seed: u64,
        window: usize,
    ) -> Self {
        let tracker = VisitTracker::new(store.edges());
        let p = part.num_parts();
        RankState {
            rank,
            part,
            store,
            reserved: FxHashSet::default(),
            potential: FxHashSet::default(),
            cumq: vec![0.0; p],
            remaining: 0,
            window: window.max(1),
            fastpath: true,
            inflight: FxHashMap::default(),
            consecutive_aborts: 0,
            conv_seq: 0,
            serving: FxHashMap::default(),
            pending_done: FxHashSet::default(),
            rng: rank_block_rng(seed, rank as u64),
            tracker,
            stats: RankStats::default(),
            obs: Obs::noop(),
        }
    }

    /// Attach an observation context (builder-style).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Disable or re-enable the rank-local fast path (builder-style).
    /// Off forces every switch through the conversation protocol; the
    /// conformance suite uses this to prove both paths bit-identical.
    pub fn with_fastpath(mut self, fastpath: bool) -> Self {
        self.fastpath = fastpath;
        self
    }

    /// The observation context, for drivers recording step-level spans
    /// (message wait, barrier, q-refresh) into this rank's probe.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Current `|E_i|`.
    pub fn edge_count(&self) -> u64 {
        self.store.num_edges() as u64
    }

    /// Mutable access to this rank's PRNG stream (used by drivers for
    /// step-boundary sampling so all randomness stays on one stream).
    pub fn rng_mut(&mut self) -> &mut BlockRng64 {
        &mut self.rng
    }

    /// Begin a step: this rank must perform `quota` operations, selecting
    /// partners according to `q` (one probability per rank).
    pub fn begin_step(&mut self, quota: u64, q: &[f64]) {
        assert_eq!(q.len(), self.part.num_parts());
        self.remaining = quota;
        self.consecutive_aborts = 0;
        let mut acc = 0.0;
        self.cumq.clear();
        for &qi in q {
            acc += qi;
            self.cumq.push(acc);
        }
    }

    /// Whether this rank has completed its own quota (it may still be
    /// serving others).
    pub fn step_done(&self) -> bool {
        self.remaining == 0 && self.inflight.is_empty() && self.pending_done.is_empty()
    }

    /// Number of own conversations currently in flight (window
    /// occupancy).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// The configured bound on concurrently in-flight own conversations.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Whether this rank holds any unfinished server-side conversations.
    pub fn serving_pending(&self) -> bool {
        !self.serving.is_empty()
    }

    /// Tear down into the final store, tracker, stats and whatever the
    /// probe recorded (`None` when unobserved).
    pub fn into_parts(
        self,
    ) -> (
        PartitionStore,
        VisitTracker,
        RankStats,
        Option<crate::obs::RankObs>,
    ) {
        debug_assert!(self.serving.is_empty(), "conversations left open");
        debug_assert!(
            self.pending_done.is_empty(),
            "unconfirmed operations leaked"
        );
        debug_assert!(self.reserved.is_empty(), "edges left reserved");
        debug_assert!(self.potential.is_empty(), "potential edges leaked");
        (self.store, self.tracker, self.stats, self.obs.finish())
    }

    /// Immutable view of the partition store.
    pub fn store(&self) -> &PartitionStore {
        &self.store
    }

    /// The first edges of all in-flight own conversations (test
    /// introspection for the reservation-disjointness property).
    #[cfg(test)]
    pub(super) fn inflight_e1s(&self) -> Vec<Edge> {
        self.inflight.values().map(|op| op.e1).collect()
    }

    /// The edges currently locked by conversations touching this rank
    /// (test introspection).
    #[cfg(test)]
    pub(super) fn reserved_edges(&self) -> Vec<Edge> {
        self.reserved.iter().copied().collect()
    }

    /// Replacement edges currently parked in the potential set (test
    /// introspection for the reservation-disjointness property).
    #[cfg(test)]
    pub(super) fn potential_edges(&self) -> Vec<Edge> {
        self.potential.iter().copied().collect()
    }

    // ------------------------------------------------------------------
    // Initiator role
    // ------------------------------------------------------------------

    /// Try to begin the next own operation. May be called repeatedly to
    /// fill the conversation window; returns [`StartResult::Idle`] once
    /// the window is full or no unstarted quota remains.
    pub fn try_start(&mut self, out: &mut Outbox) -> StartResult {
        let open = self.inflight.len();
        if open >= self.window || self.remaining <= open as u64 {
            return StartResult::Idle;
        }
        if self.store.num_edges() == 0 {
            // An emptied partition cannot supply first edges; its quota is
            // unfulfillable (the next step's multinomial gets q_i = 0).
            // In-flight conversations hold reserved edges that are still
            // in the store, so an empty store implies an empty window.
            debug_assert_eq!(open, 0, "in-flight conversations on empty store");
            self.stats.forfeited += self.remaining;
            self.remaining = 0;
            return StartResult::Idle;
        }
        let sample_start = self.obs.now();
        let mut chosen = None;
        for _ in 0..SAMPLE_ATTEMPTS {
            let e = self.store.sample(&mut self.rng).expect("store nonempty");
            if !self.reserved.contains(&e) {
                chosen = Some(e);
                break;
            }
        }
        self.obs.span_since(Phase::Sample, sample_start);
        let Some(e1) = chosen else {
            return StartResult::Blocked;
        };
        self.reserved.insert(e1);
        let partner = self.sample_partner();
        self.conv_seq += 1;
        let conv = ConvId {
            initiator: self.rank as u32,
            seq: self.conv_seq,
        };
        let started_ns = self.obs.now();
        if self.fastpath && partner == self.rank {
            return self.start_local_fast(conv, e1, started_ns, out);
        }
        self.inflight.insert(
            conv,
            InFlight {
                e1,
                partner,
                started_ns,
            },
        );
        self.obs
            .gauge(GaugeKind::WindowOccupancy, self.inflight.len() as u64);
        out.push(partner, Msg::Propose { conv, e1 });
        StartResult::Started
    }

    /// Run one rank-local operation on the zero-message fast path: the
    /// partner draw landed on this rank, so the whole conversation —
    /// second-edge sample, straight/cross coin, legality check, apply —
    /// executes inline against the local store instead of routing
    /// self-addressed `Propose`/`Validate`/`Commit` messages.
    ///
    /// Bit-identity with the protocol path is the design invariant: the
    /// RNG draws (second-edge sample loop, then the coin) and the store
    /// mutation order (remove `e2`, insert `f1`, insert `f2`, remove
    /// `e1`) are exactly those of a self-partner conversation, and a
    /// self-partner conversation completes synchronously inside the
    /// driver's outbox drain with no interleaved randomness, so skipping
    /// the message hops is unobservable. When a replacement edge hashes
    /// to a foreign owner the attempt falls back to the conversation
    /// protocol *from this exact point*, keeping the draws already made.
    fn start_local_fast(
        &mut self,
        conv: ConvId,
        e1: Edge,
        started_ns: u64,
        out: &mut Outbox,
    ) -> StartResult {
        self.stats.proposals_served += 1;
        self.obs
            .gauge(GaugeKind::WindowOccupancy, self.inflight.len() as u64 + 1);
        self.obs
            .gauge(GaugeKind::ServingDepth, self.serving.len() as u64 + 1);
        // Second-edge sample, identical to the partner role's loop (`e1`
        // sits in `reserved`, so `e2 != e1` without an extra check).
        let sample_start = self.obs.now();
        let mut chosen = None;
        for _ in 0..SAMPLE_ATTEMPTS {
            let e = self.store.sample(&mut self.rng).expect("store nonempty");
            if !self.reserved.contains(&e) {
                chosen = Some(e);
                break;
            }
        }
        self.obs.span_since(Phase::Sample, sample_start);
        let Some(e2) = chosen else {
            self.abort_own(e1, RejectReason::Contended);
            self.obs.span_since(Phase::LocalFastpath, started_ns);
            return StartResult::Started;
        };
        debug_assert_ne!(e1, e2, "e1 is reserved and cannot be re-sampled");
        let legality_start = self.obs.now();
        let kind = flip_kind(&mut self.rng);
        let (f1, f2) = match recombine(
            OrientedEdge::from_edge(e1),
            OrientedEdge::from_edge(e2),
            kind,
        ) {
            Recombination::Rejected(reason) => {
                self.obs.span_since(Phase::Legality, legality_start);
                self.abort_own(e1, reason);
                self.obs.span_since(Phase::LocalFastpath, started_ns);
                return StartResult::Started;
            }
            Recombination::Candidate { f1, f2 } => (f1, f2),
        };
        if self.part.owner(f1.src()) == self.rank && self.part.owner(f2.src()) == self.rank {
            // Fully local: legality reduces to the parallel-edge check.
            // Checking both replacements up front equals the protocol's
            // reserve-then-check because `f1 != f2` (recombination
            // guarantees it), so reserving `f1` can never affect `f2`'s
            // check.
            let blocked = self.occupied(f1) || self.occupied(f2);
            self.obs.span_since(Phase::Legality, legality_start);
            if blocked {
                self.abort_own(e1, RejectReason::ParallelEdge);
                self.obs.span_since(Phase::LocalFastpath, started_ns);
                return StartResult::Started;
            }
            // Apply inline, in the protocol's mutation order (remove
            // `e2`, insert `f1`, insert `f2`, remove `e1`) so the
            // store's internal layout — and with it every future edge
            // sample — stays identical to the protocol path's.
            let apply_start = self.obs.now();
            let removed = self.store.remove(e2);
            debug_assert!(removed, "sampled e2 {e2} missing at apply");
            self.tracker.record_removal(e2);
            let inserted = self.store.insert(f1);
            debug_assert!(inserted, "replacement {f1} collided at apply");
            let inserted = self.store.insert(f2);
            debug_assert!(inserted, "replacement {f2} collided at apply");
            let released = self.reserved.remove(&e1);
            debug_assert!(released, "own e1 {e1} was not reserved");
            let removed = self.store.remove(e1);
            debug_assert!(removed, "sampled e1 {e1} missing at apply");
            self.tracker.record_removal(e1);
            self.obs.span_since(Phase::SwitchApply, apply_start);
            self.obs.rtt_since(MsgKind::Propose, started_ns);
            self.remaining -= 1;
            self.consecutive_aborts = 0;
            self.stats.performed += 1;
            self.stats.performed_local += 1;
            self.stats.performed_fastpath += 1;
            self.obs.span_since(Phase::LocalFastpath, started_ns);
            return StartResult::Started;
        }
        // A replacement edge is foreign: fall back to the conversation
        // protocol from this exact point. The conversation must exist in
        // `inflight` before any message can complete or abort it.
        self.inflight.insert(
            conv,
            InFlight {
                e1,
                partner: self.rank,
                started_ns,
            },
        );
        self.reserved.insert(e2);
        let fs = [f1, f2];
        let mut fstate = [FState::RemotePending; 2];
        let mut failed = false;
        for i in 0..2 {
            if self.part.owner(fs[i].src()) == self.rank {
                if self.occupied(fs[i]) {
                    fstate[i] = FState::Failed;
                    failed = true;
                } else {
                    self.potential.insert(fs[i]);
                    fstate[i] = FState::LocalReserved;
                }
            }
        }
        self.obs.span_since(Phase::Legality, legality_start);
        let mut awaiting = 0usize;
        if !failed {
            for i in 0..2 {
                if fstate[i] == FState::RemotePending {
                    out.push(
                        self.part.owner(fs[i].src()),
                        Msg::Validate { conv, edge: fs[i] },
                    );
                    awaiting += 1;
                }
            }
        }
        let validate_sent_ns = if awaiting > 0 { self.obs.now() } else { 0 };
        self.serving.insert(
            conv,
            PartnerConv {
                initiator: self.rank,
                e1,
                e2,
                fs,
                fstate,
                awaiting,
                failed,
                acks_needed: 0,
                validate_sent_ns,
                commit_sent_ns: 0,
            },
        );
        if awaiting == 0 {
            debug_assert!(failed, "a foreign replacement always awaits validation");
            self.partner_abort(conv, RejectReason::ParallelEdge, out);
        }
        self.obs.span_since(Phase::LocalFastpath, started_ns);
        StartResult::Started
    }

    /// Draw the partner rank with probability `q_j` (Algorithm 2 line 2).
    fn sample_partner(&mut self) -> usize {
        let total = *self.cumq.last().expect("nonempty q");
        let u: f64 = self.rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        let idx = self.cumq.partition_point(|&c| c <= u);
        idx.min(self.cumq.len() - 1)
    }

    /// Abort bookkeeping for one of this rank's own operations whose
    /// first edge is still reserved: release it, count the reason, and
    /// forfeit the operation once the consecutive-abort budget runs out.
    /// Shared by the protocol path ([`RankState::on_abort`]) and the
    /// inline abort arms of the local fast path.
    fn abort_own(&mut self, e1: Edge, reason: RejectReason) {
        let released = self.reserved.remove(&e1);
        debug_assert!(released, "in-flight e1 was not reserved");
        match reason {
            RejectReason::SelfLoop => self.stats.aborts_loop += 1,
            RejectReason::Useless => self.stats.aborts_useless += 1,
            RejectReason::ParallelEdge => self.stats.aborts_parallel += 1,
            RejectReason::Contended => self.stats.aborts_contended += 1,
        }
        self.consecutive_aborts += 1;
        if self.consecutive_aborts >= MAX_CONSECUTIVE_ABORTS {
            self.stats.forfeited += 1;
            self.remaining = self.remaining.saturating_sub(1);
            self.consecutive_aborts = 0;
        }
    }

    fn on_abort(&mut self, conv: ConvId, reason: RejectReason) {
        let op = self
            .inflight
            .remove(&conv)
            .expect("abort for conversation not in flight");
        self.abort_own(op.e1, reason);
    }

    fn on_done(&mut self, conv: ConvId) {
        let op = self
            .inflight
            .remove(&conv)
            .expect("done for conversation not in flight");
        debug_assert!(
            !self.reserved.contains(&op.e1),
            "e1 must have been removed by commit before Done"
        );
        self.obs.rtt_since(MsgKind::Propose, op.started_ns);
        self.remaining -= 1;
        self.consecutive_aborts = 0;
        self.stats.performed += 1;
        if op.partner == self.rank {
            self.stats.performed_local += 1;
        } else {
            self.stats.performed_global += 1;
        }
    }

    /// Early completion of a global operation: the initiator's own update
    /// has been applied (the partner's `CommitRemove` arrived), so the
    /// next operation may start; the partner's `Done` is still awaited
    /// for end-of-step accounting.
    fn complete_early(&mut self, conv: ConvId) {
        let op = self
            .inflight
            .remove(&conv)
            .expect("commit for conversation not in flight");
        debug_assert_ne!(
            op.partner, self.rank,
            "local switches never commit remotely"
        );
        self.obs.rtt_since(MsgKind::Propose, op.started_ns);
        self.remaining -= 1;
        self.consecutive_aborts = 0;
        self.stats.performed += 1;
        self.stats.performed_global += 1;
        let fresh = self.pending_done.insert(conv);
        debug_assert!(fresh);
    }

    // ------------------------------------------------------------------
    // Partner role
    // ------------------------------------------------------------------

    fn on_propose(&mut self, src: usize, conv: ConvId, e1: Edge, out: &mut Outbox) {
        self.stats.proposals_served += 1;
        self.obs
            .gauge(GaugeKind::ServingDepth, self.serving.len() as u64 + 1);
        // Sample the second edge, skipping locked edges.
        let sample_start = self.obs.now();
        let mut chosen = None;
        if self.store.num_edges() > 0 {
            for _ in 0..SAMPLE_ATTEMPTS {
                let e = self.store.sample(&mut self.rng).expect("store nonempty");
                if !self.reserved.contains(&e) {
                    chosen = Some(e);
                    break;
                }
            }
        }
        self.obs.span_since(Phase::Sample, sample_start);
        let Some(e2) = chosen else {
            out.push(
                src,
                Msg::Abort {
                    conv,
                    reason: RejectReason::Contended,
                },
            );
            return;
        };
        debug_assert_ne!(e1, e2, "e1 is foreign or locally reserved");
        let legality_start = self.obs.now();
        let kind = flip_kind(&mut self.rng);
        match recombine(
            OrientedEdge::from_edge(e1),
            OrientedEdge::from_edge(e2),
            kind,
        ) {
            Recombination::Rejected(reason) => {
                self.obs.span_since(Phase::Legality, legality_start);
                out.push(src, Msg::Abort { conv, reason });
            }
            Recombination::Candidate { f1, f2 } => {
                self.reserved.insert(e2);
                // Validate both replacements concurrently (the critical
                // path is one round trip, not two): local checks first;
                // remote requests only if the local ones passed.
                let fs = [f1, f2];
                let mut fstate = [FState::RemotePending; 2];
                let mut failed = false;
                for i in 0..2 {
                    if self.part.owner(fs[i].src()) == self.rank {
                        if self.occupied(fs[i]) {
                            fstate[i] = FState::Failed;
                            failed = true;
                        } else {
                            self.potential.insert(fs[i]);
                            fstate[i] = FState::LocalReserved;
                        }
                    }
                }
                self.obs.span_since(Phase::Legality, legality_start);
                let mut awaiting = 0usize;
                if !failed {
                    for i in 0..2 {
                        if fstate[i] == FState::RemotePending {
                            out.push(
                                self.part.owner(fs[i].src()),
                                Msg::Validate { conv, edge: fs[i] },
                            );
                            awaiting += 1;
                        }
                    }
                }
                let validate_sent_ns = if awaiting > 0 { self.obs.now() } else { 0 };
                self.serving.insert(
                    conv,
                    PartnerConv {
                        initiator: src,
                        e1,
                        e2,
                        fs,
                        fstate,
                        awaiting,
                        failed,
                        acks_needed: 0,
                        validate_sent_ns,
                        commit_sent_ns: 0,
                    },
                );
                if awaiting == 0 {
                    if failed {
                        self.partner_abort(conv, RejectReason::ParallelEdge, out);
                    } else {
                        self.partner_commit(conv, out);
                    }
                }
            }
        }
    }

    fn on_validate_reply(&mut self, conv: ConvId, edge: Edge, ok: bool, out: &mut Outbox) {
        let (awaiting, failed, sent_ns) = {
            let c = self.serving.get_mut(&conv).expect("conversation exists");
            let i = if c.fs[0] == edge { 0 } else { 1 };
            debug_assert_eq!(c.fs[i], edge, "reply for unknown replacement");
            debug_assert_eq!(c.fstate[i], FState::RemotePending);
            c.fstate[i] = if ok {
                FState::RemoteReserved
            } else {
                FState::Failed
            };
            c.failed |= !ok;
            c.awaiting -= 1;
            (c.awaiting, c.failed, c.validate_sent_ns)
        };
        if awaiting == 0 {
            self.obs.rtt_since(MsgKind::Validate, sent_ns);
            if failed {
                self.partner_abort(conv, RejectReason::ParallelEdge, out);
            } else {
                self.partner_commit(conv, out);
            }
        }
    }

    fn partner_abort(&mut self, conv: ConvId, reason: RejectReason, out: &mut Outbox) {
        let c = self.serving.remove(&conv).expect("conversation exists");
        debug_assert_eq!(c.awaiting, 0, "abort with validations in flight");
        // Release everything that was reserved.
        for i in 0..2 {
            match c.fstate[i] {
                FState::LocalReserved => {
                    let had = self.potential.remove(&c.fs[i]);
                    debug_assert!(had);
                }
                FState::RemoteReserved => {
                    out.push(
                        self.part.owner(c.fs[i].src()),
                        Msg::Release {
                            conv,
                            edge: c.fs[i],
                        },
                    );
                }
                FState::RemotePending | FState::Failed => {}
            }
        }
        let had = self.reserved.remove(&c.e2);
        debug_assert!(had);
        out.push(c.initiator, Msg::Abort { conv, reason });
    }

    fn partner_commit(&mut self, conv: ConvId, out: &mut Outbox) {
        let c = *self.serving.get(&conv).expect("conversation exists");
        debug_assert!(!c.failed && c.awaiting == 0);
        // Remove the partner's own old edge.
        self.apply_remove(c.e2);
        // Materialize / request the replacements.
        let mut acks = 0usize;
        for f in c.fs {
            let owner = self.part.owner(f.src());
            if owner == self.rank {
                self.apply_insert(f);
            } else {
                out.push(owner, Msg::CommitAdd { conv, edge: f });
                acks += 1;
            }
        }
        // Remove the initiator's old edge.
        if c.initiator == self.rank {
            self.apply_remove(c.e1);
        } else {
            out.push(c.initiator, Msg::CommitRemove { conv, edge: c.e1 });
            acks += 1;
        }
        if acks == 0 {
            self.partner_finish(conv, out);
        } else {
            let commit_sent_ns = self.obs.now();
            let c = self.serving.get_mut(&conv).unwrap();
            c.acks_needed = acks;
            c.commit_sent_ns = commit_sent_ns;
        }
    }

    fn on_commit_ack(&mut self, conv: ConvId, out: &mut Outbox) {
        let (remaining, sent_ns, remote_add, remote_remove) = {
            let c = self.serving.get_mut(&conv).expect("conversation exists");
            debug_assert!(c.acks_needed > 0);
            c.acks_needed -= 1;
            let remote_add = c.fs.iter().any(|f| self.part.owner(f.src()) != self.rank);
            let remote_remove = c.initiator != self.rank;
            (c.acks_needed, c.commit_sent_ns, remote_add, remote_remove)
        };
        if remaining == 0 {
            if remote_add {
                self.obs.rtt_since(MsgKind::CommitAdd, sent_ns);
            }
            if remote_remove {
                self.obs.rtt_since(MsgKind::CommitRemove, sent_ns);
            }
            self.partner_finish(conv, out);
        }
    }

    fn partner_finish(&mut self, conv: ConvId, out: &mut Outbox) {
        let c = self.serving.remove(&conv).expect("conversation exists");
        if c.initiator == self.rank {
            self.on_done(conv);
        } else {
            out.push(c.initiator, Msg::Done { conv });
        }
    }

    /// Remove a locally-owned, reserved old edge and record the visit.
    fn apply_remove(&mut self, e: Edge) {
        let apply_start = self.obs.now();
        let was_reserved = self.reserved.remove(&e);
        debug_assert!(was_reserved, "commit removal of unreserved edge {e}");
        let removed = self.store.remove(e);
        debug_assert!(removed, "commit removal of missing edge {e}");
        self.tracker.record_removal(e);
        self.obs.span_since(Phase::SwitchApply, apply_start);
    }

    /// Materialize a locally-owned, reserved replacement edge.
    fn apply_insert(&mut self, f: Edge) {
        let apply_start = self.obs.now();
        let was_potential = self.potential.remove(&f);
        debug_assert!(was_potential, "commit insertion of unreserved edge {f}");
        let inserted = self.store.insert(f);
        debug_assert!(inserted, "potential edge {f} collided at commit");
        self.obs.span_since(Phase::SwitchApply, apply_start);
    }

    /// An edge may not be created if it exists or is about to exist.
    fn occupied(&self, f: Edge) -> bool {
        self.store.contains(f) || self.potential.contains(&f)
    }

    // ------------------------------------------------------------------
    // Validator role
    // ------------------------------------------------------------------

    fn on_validate(&mut self, src: usize, conv: ConvId, edge: Edge, out: &mut Outbox) {
        debug_assert_eq!(self.part.owner(edge.src()), self.rank, "misrouted Validate");
        self.stats.validations_served += 1;
        let legality_start = self.obs.now();
        let occupied = self.occupied(edge);
        self.obs.span_since(Phase::Legality, legality_start);
        if occupied {
            out.push(src, Msg::ValidateFail { conv, edge });
        } else {
            self.potential.insert(edge);
            out.push(src, Msg::ValidateOk { conv, edge });
        }
    }

    fn on_commit_add(&mut self, src: usize, conv: ConvId, edge: Edge, out: &mut Outbox) {
        self.apply_insert(edge);
        out.push(src, Msg::CommitAck { conv });
    }

    fn on_commit_remove(&mut self, src: usize, conv: ConvId, edge: Edge, out: &mut Outbox) {
        self.apply_remove(edge);
        out.push(src, Msg::CommitAck { conv });
        if conv.initiator as usize == self.rank {
            self.complete_early(conv);
        }
    }

    fn on_release(&mut self, edge: Edge) {
        let was_potential = self.potential.remove(&edge);
        debug_assert!(was_potential, "Release for unreserved edge {edge}");
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    /// Feed one protocol message into the state machine.
    ///
    /// # Panics
    /// Panics on `EndOfStep`/`Coll`/`Batch` (step-level traffic and
    /// framing are the driver's responsibility) and on protocol
    /// violations in debug builds.
    pub fn handle(&mut self, src: usize, msg: Msg, out: &mut Outbox) {
        match msg {
            Msg::Propose { conv, e1 } => self.on_propose(src, conv, e1, out),
            Msg::Validate { conv, edge } => self.on_validate(src, conv, edge, out),
            Msg::ValidateOk { conv, edge } => self.on_validate_reply(conv, edge, true, out),
            Msg::ValidateFail { conv, edge } => self.on_validate_reply(conv, edge, false, out),
            Msg::Release { edge, .. } => self.on_release(edge),
            Msg::CommitAdd { conv, edge } => self.on_commit_add(src, conv, edge, out),
            Msg::CommitRemove { conv, edge } => self.on_commit_remove(src, conv, edge, out),
            Msg::CommitAck { conv } => self.on_commit_ack(conv, out),
            Msg::Done { conv } => {
                if !self.pending_done.remove(&conv) {
                    self.on_done(conv);
                }
            }
            Msg::Abort { conv, reason } => self.on_abort(conv, reason),
            Msg::EndOfStep | Msg::Coll(_) | Msg::Batch(_) => {
                unreachable!("driver-level message leaked into RankState")
            }
        }
    }
}
