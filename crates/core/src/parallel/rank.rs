//! The per-processor state machine of the distributed edge-switch
//! protocol (Section 4.4, generalized).
//!
//! # Protocol
//!
//! Each switch operation is a *conversation* between up to four ranks:
//!
//! - the **initiator** `P_i`, which samples its first edge `e1 ∈ E_i`,
//!   picks a partner with probability `q_j = |E_j|/|E|`, and sends
//!   `Propose`;
//! - the **partner** `P_j`, which samples the second edge `e2 ∈ E_j`,
//!   flips the straight/cross coin, computes the replacement edges, and
//!   orchestrates validation and commit;
//! - the **owners** of the two replacement edges, which check for
//!   parallel edges and reserve the replacements as *potential edges*.
//!
//! The paper's exposition tracks one third-party `P_k`; with reduced
//! adjacency lists *both* replacement edges may land on third parties
//! (`min(u1,v2)` and `min(u2,v1)` can each be foreign), so this
//! implementation validates each replacement at its own owner — the same
//! chain, generalized to two validators.
//!
//! Safety properties maintained:
//! - **reserve-validate-commit**: no graph mutation happens until every
//!   replacement edge is reserved at its owner, so an abort never needs
//!   to roll back an applied update;
//! - **potential edges** (Section 4.5, issue 1): a reserved replacement
//!   blocks any concurrent conversation from creating the same edge;
//! - **edge locking**: `e1`/`e2` stay in `reserved` while in flight, so
//!   no two simultaneous conversations can switch the same edge;
//! - **completion acks**: the partner reports `Done` only after every
//!   participant acknowledged its commit, so a rank that has finished its
//!   own quota is guaranteed to have no lingering obligations.
//!
//! # Pipelining window
//!
//! A rank may have up to `window` *own* conversations in flight at once
//! (plus any number it serves as partner or validator). The reservation
//! machinery above is what makes this safe: every conversation locks its
//! first edge in `reserved` before proposing, and every replacement edge
//! is parked in `potential` before any commit, so two concurrent
//! conversations can never touch the same existing edge or create the
//! same new one — regardless of how many are open. A start attempt whose
//! samples all land on reserved edges parks ([`StartResult::Blocked`])
//! and is retried after the next message instead of stalling the rank.
//! With `window == 1` the machine degenerates to the strictly serial
//! initiate-wait-complete protocol of the paper's exposition.
//!
//! The state machine is *pure*: it consumes events and emits messages
//! into an [`Outbox`]; drivers (threaded, deterministic, or
//! discrete-event) own delivery. A self-addressed message is delivered
//! in place by the driver, which is how local switches reuse the same
//! code path with zero transport messages.
//!
//! # Local fast path
//!
//! When the partner draw lands on the initiating rank itself, the whole
//! conversation is rank-local: both old edges come from the local store
//! and — unless a replacement endpoint hashes to a foreign partition —
//! the entire sample→legality→apply chain touches only local state. The
//! fast path (on by default, see
//! [`ParallelConfig::local_fastpath`](crate::config::ParallelConfig))
//! executes that chain inline in [`RankState::try_start`] instead of
//! bouncing `Propose`/`Validate`/`Commit` messages to itself: no
//! [`InFlight`] or [`PartnerConv`] entry, no outbox traffic, no message
//! dispatch. RNG draw order and store mutation order are exactly those
//! of the protocol path, so seeded runs are bit-identical with the fast
//! path on or off (enforced by the conformance suite).

use super::msg::{BatchReq, ConvId, Msg, MsgKind, Outbox};
use crate::obs::{GaugeKind, Obs, Phase};
use crate::switch::{flip_kind, recombine, Recombination, RejectReason};
use crate::visit::VisitTracker;
use edgeswitch_dist::{rank_block_rng, BlockRng64};
use edgeswitch_graph::hashing::{FxHashMap, FxHashSet};
use edgeswitch_graph::{Edge, OrientedEdge, PartitionStore, Partitioner};
use rand::Rng;

/// Attempts to sample an unreserved edge before declaring contention.
const SAMPLE_ATTEMPTS: usize = 64;
/// Consecutive aborts of one operation before it is forfeited (guards
/// against degenerate graphs where no legal switch exists).
const MAX_CONSECUTIVE_ABORTS: u64 = 100_000;

/// Result of asking a rank to begin its next own operation(s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartResult {
    /// Operations were initiated (messages may be queued). Carries how
    /// many attempts began: always `1` on the per-switch path, up to
    /// `spec_batch` when a speculative round ran.
    Started(u32),
    /// Nothing to start: quota exhausted or the conversation window is
    /// full.
    Idle,
    /// Every sampled edge is locked by in-flight conversations; retry
    /// after the next message.
    Blocked,
}

/// Per-rank statistics of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Operations completed as initiator.
    pub performed: u64,
    /// ... of which both edges were local.
    pub performed_local: u64,
    /// ... of which the partner was remote.
    pub performed_global: u64,
    /// ... of which the zero-message local fast path applied the switch
    /// inline (a subset of `performed_local`; `0` when the fast path is
    /// disabled).
    pub performed_fastpath: u64,
    /// Aborts: replacement would be a self-loop.
    pub aborts_loop: u64,
    /// Aborts: switch would be useless.
    pub aborts_useless: u64,
    /// Aborts: replacement edge already exists/reserved.
    pub aborts_parallel: u64,
    /// Aborts: edges locked by concurrent operations.
    pub aborts_contended: u64,
    /// Operations given up after exhausting the consecutive-abort budget.
    pub forfeited: u64,
    /// Proposals served as partner.
    pub proposals_served: u64,
    /// Validation requests served as owner.
    pub validations_served: u64,
    /// Speculatively applied switches confirmed by a batch verdict (a
    /// subset of `performed_local`; zero unless `spec_batch > 1`).
    pub spec_committed: u64,
    /// Speculatively applied switches rolled back on a rejected verdict
    /// (each also counts under `aborts_parallel`).
    pub spec_rolled_back: u64,
}

impl RankStats {
    /// Total aborts across reasons.
    pub fn aborts(&self) -> u64 {
        self.aborts_loop + self.aborts_useless + self.aborts_parallel + self.aborts_contended
    }
}

/// The persistent state of one rank at a step boundary — everything a
/// resumed run needs to continue bit-identically.
///
/// Captured by [`RankState::checkpoint`], rebuilt by
/// [`RankState::restore`]. The protocol's transient collections are all
/// empty between steps (the completion-ack discipline guarantees it), so
/// this is the *complete* state: store edges in pool order (pool order is
/// sampling order), tracker parts, statistics, conversation-id counter
/// and RNG stream position. Serialized by the snapshot codec in
/// [`super::wire`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankCheckpoint {
    /// The rank this snapshot belongs to.
    pub rank: usize,
    /// Partition store contents in pool (insertion) order.
    pub store_edges: Vec<Edge>,
    /// [`VisitTracker::initial_count`] at capture.
    pub tracker_initial: usize,
    /// Unvisited edge keys, sorted for deterministic snapshot bytes.
    pub tracker_remaining: Vec<u64>,
    /// Accumulated per-rank statistics.
    pub stats: RankStats,
    /// Next conversation-id sequence number.
    pub conv_seq: u64,
    /// Words served from this rank's PRNG stream (see
    /// [`BlockRng64::words_served`]).
    pub rng_words: u64,
}

/// One of the initiator's in-flight operations (keyed by [`ConvId`]).
#[derive(Clone, Copy, Debug)]
struct InFlight {
    e1: Edge,
    partner: usize,
    /// Observation stamp of the proposal (0 when unobserved); the
    /// `Propose` round-trip histogram records whole-conversation
    /// lifetimes from it.
    started_ns: u64,
}

/// One speculatively applied switch awaiting its batch verdict: the
/// undo-log entry of the `SpecBatch` state machine. The switch is fully
/// applied to the local store (old edges out, local replacement in);
/// the logged swap-remove positions let a rejected verdict restore the
/// sampling pool's dense layout exactly when entries are undone in
/// reverse apply order.
#[derive(Clone, Copy, Debug)]
struct SpecOp {
    /// The initiator's first edge (removed from the store, parked in
    /// `potential` so no concurrent conversation recreates it).
    e1: Edge,
    /// Pool index `e1` occupied before its logged removal.
    pos1: u32,
    /// The second edge (same treatment as `e1`).
    e2: Edge,
    /// Pool index `e2` occupied before its logged removal.
    pos2: u32,
    /// The locally-owned replacement edge, if one of the two was local
    /// (inserted into the store, locked in `reserved` until the verdict).
    f_local: Option<Edge>,
    /// Observation stamp of the speculative apply (0 when unobserved).
    started_ns: u64,
}

/// A conversation this rank orchestrates as partner.
#[derive(Clone, Copy, Debug)]
struct PartnerConv {
    initiator: usize,
    e1: Edge,
    e2: Edge,
    /// Replacement edges.
    fs: [Edge; 2],
    /// Per-replacement validation state.
    fstate: [FState; 2],
    /// Outstanding remote validation replies.
    awaiting: usize,
    /// Set once any validation failed; the conversation aborts when the
    /// last outstanding reply arrives.
    failed: bool,
    /// Outstanding remote commit acknowledgements.
    acks_needed: usize,
    /// Observation stamp of the `Validate` fan-out (0 = none sent).
    validate_sent_ns: u64,
    /// Observation stamp of the commit fan-out (0 = all local).
    commit_sent_ns: u64,
}

/// Validation state of one replacement edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FState {
    /// Owned here; reserved in the local potential set.
    LocalReserved,
    /// Validation request sent to the remote owner.
    RemotePending,
    /// Remote owner reserved it.
    RemoteReserved,
    /// Rejected (would create a parallel edge).
    Failed,
}

/// One processor's complete protocol state.
pub struct RankState {
    rank: usize,
    part: Partitioner,
    store: PartitionStore,
    /// Existing edges locked by in-flight conversations.
    reserved: FxHashSet<Edge>,
    /// Replacement edges reserved but not yet materialized.
    potential: FxHashSet<Edge>,
    /// Cumulative partner-selection distribution (refreshed per step).
    cumq: Vec<f64>,
    remaining: u64,
    /// Bound on concurrently in-flight own conversations (≥ 1).
    window: usize,
    /// Commit rank-local switches inline instead of routing
    /// self-addressed protocol messages (see the module's *Local fast
    /// path* section). Outcomes are bit-identical either way.
    fastpath: bool,
    /// Own conversations currently in flight, up to `window` of them.
    inflight: FxHashMap<ConvId, InFlight>,
    /// Speculative batch size (≥ 1; `1` disables the `SpecBatch` machine
    /// entirely — [`RankState::try_start`] then runs the per-switch path
    /// verbatim).
    spec_batch: usize,
    /// Speculatively applied switches awaiting verdicts, keyed like
    /// `inflight` (both count against the window).
    spec_ops: FxHashMap<ConvId, SpecOp>,
    /// Scratch: the current round's batch requests in apply order,
    /// grouped into one `BatchPropose` per owner at end of round.
    spec_round: Vec<(usize, BatchReq)>,
    /// Rolled-back operations still owed a retry through the per-switch
    /// path (a routing hint consumed by the next batch rounds).
    spec_retry: u64,
    consecutive_aborts: u64,
    conv_seq: u64,
    serving: FxHashMap<ConvId, PartnerConv>,
    /// Own operations whose local update is applied but whose final
    /// `Done` confirmation is still outstanding (the initiator pipelines
    /// its next operation; end-of-step waits for these).
    pending_done: FxHashSet<ConvId>,
    /// This rank's PRNG stream, block-buffered: per-step randomness is
    /// bulk-drawn a block of raw words at a time while preserving draw
    /// order exactly, so outcomes stay bit-identical to the unbuffered
    /// stream.
    rng: BlockRng64,
    /// Visit tracking over this partition's initial edges.
    pub tracker: VisitTracker,
    /// Run statistics.
    pub stats: RankStats,
    /// Observation context (no-op unless a driver attaches a probe via
    /// [`RankState::with_obs`]). Probes only read — they never touch the
    /// RNG or the protocol — so observed runs stay bit-identical.
    obs: Obs,
}

impl RankState {
    /// Build the state for `rank` from its partition store, allowing up
    /// to `window` concurrently in-flight own conversations.
    pub fn new(
        rank: usize,
        part: Partitioner,
        store: PartitionStore,
        seed: u64,
        window: usize,
    ) -> Self {
        let tracker = VisitTracker::new(store.edges());
        let p = part.num_parts();
        RankState {
            rank,
            part,
            store,
            reserved: FxHashSet::default(),
            potential: FxHashSet::default(),
            cumq: vec![0.0; p],
            remaining: 0,
            window: window.max(1),
            fastpath: true,
            inflight: FxHashMap::default(),
            spec_batch: 1,
            spec_ops: FxHashMap::default(),
            spec_round: Vec::new(),
            spec_retry: 0,
            consecutive_aborts: 0,
            conv_seq: 0,
            serving: FxHashMap::default(),
            pending_done: FxHashSet::default(),
            rng: rank_block_rng(seed, rank as u64),
            tracker,
            stats: RankStats::default(),
            obs: Obs::noop(),
        }
    }

    /// Attach an observation context (builder-style).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Disable or re-enable the rank-local fast path (builder-style).
    /// Off forces every switch through the conversation protocol; the
    /// conformance suite uses this to prove both paths bit-identical.
    pub fn with_fastpath(mut self, fastpath: bool) -> Self {
        self.fastpath = fastpath;
        self
    }

    /// Set the speculative batch size (builder-style, clamped to ≥ 1).
    /// `1` keeps every switch on the per-switch conversation path;
    /// larger values let [`RankState::try_start`] run whole speculative
    /// rounds per call.
    pub fn with_spec_batch(mut self, spec_batch: usize) -> Self {
        self.spec_batch = spec_batch.max(1);
        self
    }

    /// The observation context, for drivers recording step-level spans
    /// (message wait, barrier, q-refresh) into this rank's probe.
    pub fn obs_mut(&mut self) -> &mut Obs {
        &mut self.obs
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Current `|E_i|`.
    pub fn edge_count(&self) -> u64 {
        self.store.num_edges() as u64
    }

    /// Mutable access to this rank's PRNG stream (used by drivers for
    /// step-boundary sampling so all randomness stays on one stream).
    pub fn rng_mut(&mut self) -> &mut BlockRng64 {
        &mut self.rng
    }

    /// Begin a step: this rank must perform `quota` operations, selecting
    /// partners according to `q` (one probability per rank).
    pub fn begin_step(&mut self, quota: u64, q: &[f64]) {
        assert_eq!(q.len(), self.part.num_parts());
        self.remaining = quota;
        self.consecutive_aborts = 0;
        self.spec_retry = 0;
        let mut acc = 0.0;
        self.cumq.clear();
        for &qi in q {
            acc += qi;
            self.cumq.push(acc);
        }
    }

    /// Whether this rank has completed its own quota (it may still be
    /// serving others).
    pub fn step_done(&self) -> bool {
        self.remaining == 0
            && self.inflight.is_empty()
            && self.spec_ops.is_empty()
            && self.pending_done.is_empty()
    }

    /// Number of own operations currently in flight — per-switch
    /// conversations plus unsettled speculative switches (both count
    /// against the window).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len() + self.spec_ops.len()
    }

    /// The configured bound on concurrently in-flight own conversations.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Whether this rank holds any unfinished server-side conversations.
    pub fn serving_pending(&self) -> bool {
        !self.serving.is_empty()
    }

    /// Tear down into the final store, tracker, stats and whatever the
    /// probe recorded (`None` when unobserved).
    pub fn into_parts(
        self,
    ) -> (
        PartitionStore,
        VisitTracker,
        RankStats,
        Option<crate::obs::RankObs>,
    ) {
        debug_assert!(self.serving.is_empty(), "conversations left open");
        debug_assert!(
            self.pending_done.is_empty(),
            "unconfirmed operations leaked"
        );
        debug_assert!(self.reserved.is_empty(), "edges left reserved");
        debug_assert!(self.potential.is_empty(), "potential edges leaked");
        debug_assert!(self.spec_ops.is_empty(), "speculative switches leaked");
        debug_assert!(self.spec_round.is_empty(), "unflushed batch requests");
        (self.store, self.tracker, self.stats, self.obs.finish())
    }

    /// Immutable view of the partition store.
    pub fn store(&self) -> &PartitionStore {
        &self.store
    }

    /// Capture this rank's persistent state at a step boundary.
    ///
    /// At step boundaries every transient collection (reserved edges,
    /// potential edges, in-flight and server-side conversations,
    /// speculative ops) is empty — [`RankState::into_parts`] asserts the
    /// same invariant — so the whole protocol state reduces to the store
    /// contents, the visit tracker, the statistics, the conversation-id
    /// counter and the RNG stream position. `remaining`/`cumq` are step
    /// inputs re-established by [`RankState::begin_step`] and need no
    /// capture. Restoring via [`RankState::restore`] with the same
    /// `(seed, window)` yields a rank whose subsequent steps are
    /// bit-identical to the uninterrupted run.
    pub fn checkpoint(&self) -> RankCheckpoint {
        debug_assert!(
            self.inflight.is_empty()
                && self.spec_ops.is_empty()
                && self.serving.is_empty()
                && self.pending_done.is_empty()
                && self.reserved.is_empty()
                && self.potential.is_empty(),
            "checkpoint taken mid-step"
        );
        let mut tracker_remaining: Vec<u64> = self.tracker.remaining_keys().collect();
        // Sort for deterministic snapshot bytes; `from_parts` rebuilds a
        // set, so the order carries no semantics.
        tracker_remaining.sort_unstable();
        RankCheckpoint {
            rank: self.rank,
            store_edges: self.store.edges().collect(),
            tracker_initial: self.tracker.initial_count(),
            tracker_remaining,
            stats: self.stats,
            conv_seq: self.conv_seq,
            rng_words: self.rng.words_served(),
        }
    }

    /// Rebuild a rank from a [`RankCheckpoint`].
    ///
    /// The store is reinserted in captured pool order (sampling order is
    /// pool order, so this is load-bearing), the tracker is rebuilt from
    /// its parts, and the RNG stream is re-derived from `(seed, rank)`
    /// and fast-forwarded to the recorded position. The partitioner is
    /// not part of the checkpoint: it is deterministic from the job's
    /// graph and config, so callers rebuild it the same way the original
    /// driver did.
    pub fn restore(part: Partitioner, seed: u64, window: usize, ckpt: &RankCheckpoint) -> Self {
        let mut store = PartitionStore::new(ckpt.rank);
        for &e in &ckpt.store_edges {
            store.insert(e);
        }
        let mut state = RankState::new(ckpt.rank, part, store, seed, window);
        state.tracker =
            VisitTracker::from_parts(ckpt.tracker_initial, ckpt.tracker_remaining.iter().copied());
        state.stats = ckpt.stats;
        state.conv_seq = ckpt.conv_seq;
        state.rng.skip_words(ckpt.rng_words);
        state
    }

    /// The first edges of all in-flight own conversations (test
    /// introspection for the reservation-disjointness property).
    #[cfg(test)]
    pub(super) fn inflight_e1s(&self) -> Vec<Edge> {
        self.inflight.values().map(|op| op.e1).collect()
    }

    /// The edges currently locked by conversations touching this rank
    /// (test introspection).
    #[cfg(test)]
    pub(super) fn reserved_edges(&self) -> Vec<Edge> {
        self.reserved.iter().copied().collect()
    }

    /// Replacement edges currently parked in the potential set (test
    /// introspection for the reservation-disjointness property).
    #[cfg(test)]
    pub(super) fn potential_edges(&self) -> Vec<Edge> {
        self.potential.iter().copied().collect()
    }

    // ------------------------------------------------------------------
    // Initiator role
    // ------------------------------------------------------------------

    /// Try to begin the next own operation(s). May be called repeatedly
    /// to fill the conversation window; returns [`StartResult::Idle`]
    /// once the window is full or no unstarted quota remains.
    ///
    /// With `spec_batch > 1` one call runs a whole speculative round
    /// (up to `spec_batch` attempts); with the default `spec_batch == 1`
    /// it is exactly the per-switch path, so the schedule — RNG draws,
    /// message order, store layout — is bit-identical to the
    /// pre-speculation protocol by construction.
    pub fn try_start(&mut self, out: &mut Outbox) -> StartResult {
        if self.spec_batch > 1 {
            return self.try_start_batch(out);
        }
        self.try_start_single(out)
    }

    /// Begin at most one own operation through the per-switch
    /// conversation path (including its local fast path). Also the retry
    /// path for rolled-back speculative switches.
    fn try_start_single(&mut self, out: &mut Outbox) -> StartResult {
        let open = self.inflight.len() + self.spec_ops.len();
        if open >= self.window || self.remaining <= open as u64 {
            return StartResult::Idle;
        }
        if self.store.num_edges() == 0 {
            // An emptied partition cannot supply first edges; its quota is
            // unfulfillable (the next step's multinomial gets q_i = 0).
            // In-flight conversations hold reserved edges that are still
            // in the store, so an empty store implies an empty window —
            // unless speculative switches removed edges that a rollback
            // verdict may yet return.
            debug_assert!(
                self.inflight.is_empty(),
                "in-flight conversations on empty store"
            );
            if !self.spec_ops.is_empty() {
                return StartResult::Idle;
            }
            self.stats.forfeited += self.remaining;
            self.remaining = 0;
            return StartResult::Idle;
        }
        let sample_start = self.obs.now();
        let mut chosen = None;
        for _ in 0..SAMPLE_ATTEMPTS {
            let e = self.store.sample(&mut self.rng).expect("store nonempty");
            if !self.reserved.contains(&e) {
                chosen = Some(e);
                break;
            }
        }
        self.obs.span_since(Phase::Sample, sample_start);
        let Some(e1) = chosen else {
            return StartResult::Blocked;
        };
        self.reserved.insert(e1);
        let partner = self.sample_partner();
        self.conv_seq += 1;
        let conv = ConvId {
            initiator: self.rank as u32,
            seq: self.conv_seq,
        };
        let started_ns = self.obs.now();
        if self.fastpath && partner == self.rank {
            return self.start_local_fast(conv, e1, started_ns, out);
        }
        self.inflight.insert(
            conv,
            InFlight {
                e1,
                partner,
                started_ns,
            },
        );
        self.obs.gauge(
            GaugeKind::WindowOccupancy,
            (self.inflight.len() + self.spec_ops.len()) as u64,
        );
        out.push(partner, Msg::Propose { conv, e1 });
        StartResult::Started(1)
    }

    /// Run one rank-local operation on the zero-message fast path: the
    /// partner draw landed on this rank, so the whole conversation —
    /// second-edge sample, straight/cross coin, legality check, apply —
    /// executes inline against the local store instead of routing
    /// self-addressed `Propose`/`Validate`/`Commit` messages.
    ///
    /// Bit-identity with the protocol path is the design invariant: the
    /// RNG draws (second-edge sample loop, then the coin) and the store
    /// mutation order (remove `e2`, insert `f1`, insert `f2`, remove
    /// `e1`) are exactly those of a self-partner conversation, and a
    /// self-partner conversation completes synchronously inside the
    /// driver's outbox drain with no interleaved randomness, so skipping
    /// the message hops is unobservable. When a replacement edge hashes
    /// to a foreign owner the attempt falls back to the conversation
    /// protocol *from this exact point*, keeping the draws already made.
    fn start_local_fast(
        &mut self,
        conv: ConvId,
        e1: Edge,
        started_ns: u64,
        out: &mut Outbox,
    ) -> StartResult {
        self.stats.proposals_served += 1;
        self.obs
            .gauge(GaugeKind::WindowOccupancy, self.inflight.len() as u64 + 1);
        self.obs
            .gauge(GaugeKind::ServingDepth, self.serving.len() as u64 + 1);
        // Second-edge sample, identical to the partner role's loop (`e1`
        // sits in `reserved`, so `e2 != e1` without an extra check).
        let sample_start = self.obs.now();
        let mut chosen = None;
        for _ in 0..SAMPLE_ATTEMPTS {
            let e = self.store.sample(&mut self.rng).expect("store nonempty");
            if !self.reserved.contains(&e) {
                chosen = Some(e);
                break;
            }
        }
        self.obs.span_since(Phase::Sample, sample_start);
        let Some(e2) = chosen else {
            self.abort_own(e1, RejectReason::Contended);
            self.obs.span_since(Phase::LocalFastpath, started_ns);
            return StartResult::Started(1);
        };
        debug_assert_ne!(e1, e2, "e1 is reserved and cannot be re-sampled");
        let legality_start = self.obs.now();
        let kind = flip_kind(&mut self.rng);
        let (f1, f2) = match recombine(
            OrientedEdge::from_edge(e1),
            OrientedEdge::from_edge(e2),
            kind,
        ) {
            Recombination::Rejected(reason) => {
                self.obs.span_since(Phase::Legality, legality_start);
                self.abort_own(e1, reason);
                self.obs.span_since(Phase::LocalFastpath, started_ns);
                return StartResult::Started(1);
            }
            Recombination::Candidate { f1, f2 } => (f1, f2),
        };
        if self.part.owner(f1.src()) == self.rank && self.part.owner(f2.src()) == self.rank {
            // Fully local: legality reduces to the parallel-edge check.
            // Checking both replacements up front equals the protocol's
            // reserve-then-check because `f1 != f2` (recombination
            // guarantees it), so reserving `f1` can never affect `f2`'s
            // check.
            let blocked = self.occupied(f1) || self.occupied(f2);
            self.obs.span_since(Phase::Legality, legality_start);
            if blocked {
                self.abort_own(e1, RejectReason::ParallelEdge);
            } else {
                self.apply_local_inline(e1, e2, f1, f2, started_ns);
            }
            self.obs.span_since(Phase::LocalFastpath, started_ns);
            return StartResult::Started(1);
        }
        self.obs.span_since(Phase::Legality, legality_start);
        self.fallback_to_protocol(conv, e1, e2, f1, f2, started_ns, out);
        self.obs.span_since(Phase::LocalFastpath, started_ns);
        StartResult::Started(1)
    }

    /// Run one speculative round: up to `spec_batch` start attempts in a
    /// tight loop, with self-partner draws applied optimistically
    /// against the local store and their foreign reservations validated
    /// in one coalesced [`Msg::BatchPropose`] per touched owner at the
    /// end of the round.
    ///
    /// Per-attempt gating (window occupancy, remaining quota, the
    /// empty-store forfeit) is identical to the per-switch path, which
    /// also serves as the retry path for rolled-back speculations (the
    /// `spec_retry` hint): a speculative loser costs one extra
    /// conversation, never livelock. Foreign-partner draws and
    /// two-foreign-owner replacements take the ordinary conversation
    /// protocol from inside the round — speculation only ever covers
    /// attempts whose conflict window is a single owner's verdict.
    fn try_start_batch(&mut self, out: &mut Outbox) -> StartResult {
        debug_assert!(self.spec_round.is_empty(), "round flushed before return");
        // A single-rank world cannot draw a foreign partner or produce a
        // foreign-owned replacement, so the partner draw and the owner
        // lookups are constants; the speculative round skips both. This
        // perturbs the RNG stream relative to `spec_batch == 1` — which
        // is fine: bit-identity is only pledged with speculation off,
        // and all three drivers share this code so they stay conformant.
        let solo = self.cumq.len() == 1;
        let mut begun: u32 = 0;
        let mut blocked = false;
        while (begun as usize) < self.spec_batch {
            let open = self.inflight.len() + self.spec_ops.len();
            if open >= self.window || self.remaining <= open as u64 {
                break;
            }
            if self.store.num_edges() == 0 || self.spec_retry > 0 {
                // The per-switch path owns both the empty-store forfeit
                // and the post-rollback retries.
                match self.try_start_single(out) {
                    StartResult::Started(n) => {
                        self.spec_retry = self.spec_retry.saturating_sub(1);
                        begun += n;
                        continue;
                    }
                    StartResult::Blocked => {
                        blocked = true;
                        break;
                    }
                    StartResult::Idle => break,
                }
            }
            let sample_start = self.obs.now();
            // With no reservations outstanding (the steady state of a
            // speculative round: fully-local attempts resolve in place)
            // the first draw is always acceptable — same RNG stream,
            // no per-candidate probe.
            let mut chosen = None;
            if self.reserved.is_empty() {
                chosen = Some(self.store.sample(&mut self.rng).expect("store nonempty"));
            } else {
                for _ in 0..SAMPLE_ATTEMPTS {
                    let e = self.store.sample(&mut self.rng).expect("store nonempty");
                    if !self.reserved.contains(&e) {
                        chosen = Some(e);
                        break;
                    }
                }
            }
            self.obs.span_since(Phase::Sample, sample_start);
            let Some(e1) = chosen else {
                blocked = true;
                break;
            };
            let partner = if solo {
                self.rank
            } else {
                self.sample_partner()
            };
            let started_ns = self.obs.now();
            begun += 1;
            if partner == self.rank {
                // `e1` is not reserved yet: the speculative routine
                // completes synchronously (apply, park, or fall back) and
                // reserves only on the paths that outlive this attempt.
                self.start_local_spec(solo, e1, started_ns, out);
            } else {
                self.reserved.insert(e1);
                self.conv_seq += 1;
                let conv = ConvId {
                    initiator: self.rank as u32,
                    seq: self.conv_seq,
                };
                self.inflight.insert(
                    conv,
                    InFlight {
                        e1,
                        partner,
                        started_ns,
                    },
                );
                self.obs.gauge(
                    GaugeKind::WindowOccupancy,
                    (self.inflight.len() + self.spec_ops.len()) as u64,
                );
                out.push(partner, Msg::Propose { conv, e1 });
            }
        }
        self.flush_spec_round(out);
        if begun > 0 {
            StartResult::Started(begun)
        } else if blocked {
            StartResult::Blocked
        } else {
            StartResult::Idle
        }
    }

    /// One self-partner attempt of a speculative round. Fully-local
    /// switches run the fast-path routine verbatim; exactly one foreign
    /// replacement owner makes the switch *speculable*: apply it locally
    /// now, log the undo positions, and defer the owner's parallel-edge
    /// check to the round's coalesced verdict. Two distinct foreign
    /// owners fall back to the per-switch conversation protocol (their
    /// validations cannot be settled by one verdict entry).
    ///
    /// Unlike the per-switch path, the caller has *not* reserved `e1`:
    /// most attempts resolve synchronously right here (inline apply or
    /// abort), so the reserve/release round trip through the hash set
    /// would be pure overhead on the hot path. The e2 loop excludes `e1`
    /// explicitly — the same candidate filter, the same RNG draws — and
    /// only the arms that outlive this call (protocol fallback) reserve.
    fn start_local_spec(&mut self, solo: bool, e1: Edge, started_ns: u64, out: &mut Outbox) {
        self.stats.proposals_served += 1;
        self.obs.gauge(
            GaugeKind::WindowOccupancy,
            (self.inflight.len() + self.spec_ops.len()) as u64 + 1,
        );
        self.obs
            .gauge(GaugeKind::ServingDepth, self.serving.len() as u64 + 1);
        // Second-edge sample, identical to the partner role's loop
        // (with `e1` excluded explicitly instead of via `reserved`; an
        // empty reservation set reduces the filter to that one compare).
        let sample_start = self.obs.now();
        let no_reservations = self.reserved.is_empty();
        let mut chosen = None;
        for _ in 0..SAMPLE_ATTEMPTS {
            let e = self.store.sample(&mut self.rng).expect("store nonempty");
            if e != e1 && (no_reservations || !self.reserved.contains(&e)) {
                chosen = Some(e);
                break;
            }
        }
        self.obs.span_since(Phase::Sample, sample_start);
        let Some(e2) = chosen else {
            self.count_abort(RejectReason::Contended);
            return;
        };
        let legality_start = self.obs.now();
        let kind = flip_kind(&mut self.rng);
        let (f1, f2) = match recombine(
            OrientedEdge::from_edge(e1),
            OrientedEdge::from_edge(e2),
            kind,
        ) {
            Recombination::Rejected(reason) => {
                self.obs.span_since(Phase::Legality, legality_start);
                self.count_abort(reason);
                return;
            }
            Recombination::Candidate { f1, f2 } => (f1, f2),
        };
        let (o1, o2) = if solo {
            (self.rank, self.rank)
        } else {
            (self.part.owner(f1.src()), self.part.owner(f2.src()))
        };
        if o1 == self.rank && o2 == self.rank {
            // Fully local: exactly the fast-path arm.
            let blocked = self.occupied(f1) || self.occupied(f2);
            self.obs.span_since(Phase::Legality, legality_start);
            if blocked {
                self.count_abort(RejectReason::ParallelEdge);
            } else {
                self.apply_local_core(e1, e2, f1, f2, started_ns);
            }
            return;
        }
        if o1 != self.rank && o2 != self.rank && o1 != o2 {
            self.obs.span_since(Phase::Legality, legality_start);
            self.reserved.insert(e1);
            self.conv_seq += 1;
            let conv = ConvId {
                initiator: self.rank as u32,
                seq: self.conv_seq,
            };
            self.fallback_to_protocol(conv, e1, e2, f1, f2, started_ns, out);
            return;
        }
        // Exactly one foreign owner. A locally-owned replacement must
        // pass its parallel-edge check before anything is applied.
        let (owner, first, second, f_local) = if o1 == o2 {
            (o1, f1, Some(f2), None)
        } else if o1 != self.rank {
            (o1, f1, None, Some(f2))
        } else {
            (o2, f2, None, Some(f1))
        };
        if let Some(f) = f_local {
            if self.occupied(f) {
                self.obs.span_since(Phase::Legality, legality_start);
                self.count_abort(RejectReason::ParallelEdge);
                return;
            }
        }
        self.obs.span_since(Phase::Legality, legality_start);
        // Optimistic apply, in the protocol's mutation order (remove
        // `e2`, insert the local replacement, remove `e1`), logging pool
        // positions for reverse-order rollback. The removed old edges
        // park in `potential` so no concurrent conversation recreates
        // them before the verdict; the local replacement sits in the
        // store (blocking recreation) and in `reserved` (blocking
        // re-sampling). Visit tracking is deferred to the commit — a
        // rolled-back switch must not record visits.
        let apply_start = self.obs.now();
        let pos2 = self.store.remove_logged(e2).expect("sampled e2 present");
        let fresh = self.potential.insert(e2);
        debug_assert!(fresh, "store edge {e2} was already a potential edge");
        if let Some(f) = f_local {
            let inserted = self.store.insert(f);
            debug_assert!(inserted, "replacement {f} collided after its check");
            self.reserved.insert(f);
        }
        let pos1 = self.store.remove_logged(e1).expect("sampled e1 present");
        let fresh = self.potential.insert(e1);
        debug_assert!(fresh, "store edge {e1} was already a potential edge");
        self.obs.span_since(Phase::SwitchApply, apply_start);
        self.conv_seq += 1;
        let conv = ConvId {
            initiator: self.rank as u32,
            seq: self.conv_seq,
        };
        self.spec_ops.insert(
            conv,
            SpecOp {
                e1,
                pos1,
                e2,
                pos2,
                f_local,
                started_ns,
            },
        );
        self.spec_round.push((
            owner,
            BatchReq {
                conv,
                first,
                second,
            },
        ));
    }

    /// End of a speculative round: group the round's requests into one
    /// [`Msg::BatchPropose`] per owner, owners in first-touch order and
    /// requests in apply order within each (the verdict handler relies
    /// on per-message apply order for exact reverse rollback).
    fn flush_spec_round(&mut self, out: &mut Outbox) {
        if self.spec_round.is_empty() {
            return;
        }
        let mut round = std::mem::take(&mut self.spec_round);
        while !round.is_empty() {
            let owner = round[0].0;
            let mut reqs = Vec::with_capacity(round.len());
            round.retain(|&(o, req)| {
                if o == owner {
                    reqs.push(req);
                    false
                } else {
                    true
                }
            });
            out.push(owner, Msg::BatchPropose { reqs });
        }
        self.spec_round = round; // keep the allocation
    }

    /// Serve one [`Msg::BatchPropose`] as the owner of its replacement
    /// edges: check-and-create each entry's edges directly (the owner is
    /// authoritative, so an accepting verdict *is* the commit — no
    /// reservation round, nothing for the owner to roll back). Entries
    /// are independent: each is checked against the store as left by its
    /// predecessors in the same batch.
    fn on_batch_propose(&mut self, src: usize, reqs: Vec<BatchReq>, out: &mut Outbox) {
        let serve_start = self.obs.now();
        let mut verdicts = Vec::with_capacity(reqs.len());
        for req in reqs {
            self.stats.validations_served += 1;
            debug_assert_eq!(
                self.part.owner(req.first.src()),
                self.rank,
                "misrouted BatchPropose"
            );
            let ok = !self.occupied(req.first) && req.second.is_none_or(|s| !self.occupied(s));
            if ok {
                let inserted = self.store.insert(req.first);
                debug_assert!(inserted, "checked replacement {} collided", req.first);
                if let Some(s) = req.second {
                    debug_assert_eq!(
                        self.part.owner(s.src()),
                        self.rank,
                        "split-owner batch entry"
                    );
                    let inserted = self.store.insert(s);
                    debug_assert!(inserted, "checked replacement {s} collided");
                }
            }
            verdicts.push((req.conv, ok));
        }
        self.obs.span_since(Phase::BatchValidate, serve_start);
        out.push(src, Msg::BatchVerdict { verdicts });
    }

    /// Settle one [`Msg::BatchVerdict`]: commits first (forward order —
    /// they never touch the sampling pool), then rollbacks in *reverse*
    /// apply order, so an all-reject verdict restores the pool's dense
    /// layout bit-exactly (mixed verdicts fall back to content-equivalent
    /// append restores inside [`PartitionStore::unremove`]).
    fn on_batch_verdict(&mut self, verdicts: Vec<(ConvId, bool)>) {
        for &(conv, ok) in &verdicts {
            if ok {
                self.spec_commit(conv);
            }
        }
        for &(conv, ok) in verdicts.iter().rev() {
            if !ok {
                self.spec_rollback(conv);
            }
        }
    }

    /// The owner accepted a speculative switch: the local apply stands;
    /// release the guards and do the deferred accounting.
    fn spec_commit(&mut self, conv: ConvId) {
        let op = self
            .spec_ops
            .remove(&conv)
            .expect("verdict for unknown speculation");
        let had = self.potential.remove(&op.e1);
        debug_assert!(had, "speculated e1 left the potential set");
        let had = self.potential.remove(&op.e2);
        debug_assert!(had, "speculated e2 left the potential set");
        if let Some(f) = op.f_local {
            let had = self.reserved.remove(&f);
            debug_assert!(had, "speculative replacement left the reserved set");
        }
        self.tracker.record_removal(op.e1);
        self.tracker.record_removal(op.e2);
        self.obs.rtt_since(MsgKind::BatchPropose, op.started_ns);
        self.remaining -= 1;
        self.consecutive_aborts = 0;
        self.stats.performed += 1;
        self.stats.performed_local += 1;
        self.stats.spec_committed += 1;
    }

    /// The owner rejected a speculative switch: undo the local apply in
    /// exact reverse order of [`RankState::start_local_spec`] — `e1`
    /// back to its logged slot, the local replacement out, `e2` back to
    /// its logged slot — count it like a parallel-edge abort, and owe
    /// the operation a retry through the per-switch path.
    fn spec_rollback(&mut self, conv: ConvId) {
        let op = self
            .spec_ops
            .remove(&conv)
            .expect("verdict for unknown speculation");
        let had = self.potential.remove(&op.e1);
        debug_assert!(had, "speculated e1 left the potential set");
        let restored = self.store.unremove(op.e1, op.pos1);
        debug_assert!(restored, "rollback found e1 {} recreated", op.e1);
        if let Some(f) = op.f_local {
            let had = self.reserved.remove(&f);
            debug_assert!(had, "speculative replacement left the reserved set");
            let removed = self.store.remove(f);
            debug_assert!(removed, "speculative replacement {f} vanished");
        }
        let had = self.potential.remove(&op.e2);
        debug_assert!(had, "speculated e2 left the potential set");
        let restored = self.store.unremove(op.e2, op.pos2);
        debug_assert!(restored, "rollback found e2 {} recreated", op.e2);
        self.obs.rtt_since(MsgKind::BatchPropose, op.started_ns);
        self.stats.aborts_parallel += 1;
        self.stats.spec_rolled_back += 1;
        self.consecutive_aborts += 1;
        if self.consecutive_aborts >= MAX_CONSECUTIVE_ABORTS {
            self.stats.forfeited += 1;
            self.remaining = self.remaining.saturating_sub(1);
            self.consecutive_aborts = 0;
        }
        self.spec_retry += 1;
    }

    /// Apply a fully rank-local switch inline, in the protocol's
    /// mutation order (remove `e2`, insert `f1`, insert `f2`, remove
    /// `e1`) so the store's internal layout — and with it every future
    /// edge sample — stays identical to the protocol path's. Shared by
    /// the local fast path and the speculative batch round, whose
    /// fully-local attempts are exactly fast-path switches.
    fn apply_local_inline(&mut self, e1: Edge, e2: Edge, f1: Edge, f2: Edge, started_ns: u64) {
        let released = self.reserved.remove(&e1);
        debug_assert!(released, "own e1 {e1} was not reserved");
        self.apply_local_core(e1, e2, f1, f2, started_ns);
    }

    /// [`apply_local_inline`] without the `e1` release, for the
    /// speculative round's fully-local arm where `e1` was never reserved
    /// (the attempt resolves synchronously). The store mutation order is
    /// the fast path's, unchanged.
    fn apply_local_core(&mut self, e1: Edge, e2: Edge, f1: Edge, f2: Edge, started_ns: u64) {
        let apply_start = self.obs.now();
        let removed = self.store.remove(e2);
        debug_assert!(removed, "sampled e2 {e2} missing at apply");
        self.tracker.record_removal(e2);
        let inserted = self.store.insert(f1);
        debug_assert!(inserted, "replacement {f1} collided at apply");
        let inserted = self.store.insert(f2);
        debug_assert!(inserted, "replacement {f2} collided at apply");
        let removed = self.store.remove(e1);
        debug_assert!(removed, "sampled e1 {e1} missing at apply");
        self.tracker.record_removal(e1);
        self.obs.span_since(Phase::SwitchApply, apply_start);
        self.obs.rtt_since(MsgKind::Propose, started_ns);
        self.remaining -= 1;
        self.consecutive_aborts = 0;
        self.stats.performed += 1;
        self.stats.performed_local += 1;
        self.stats.performed_fastpath += 1;
    }

    /// A replacement edge is foreign (and not speculable): fall back to
    /// the conversation protocol from this exact point, keeping the
    /// draws already made. The conversation must exist in `inflight`
    /// before any message can complete or abort it. The caller has
    /// already closed its `Legality` span.
    #[allow(clippy::too_many_arguments)]
    fn fallback_to_protocol(
        &mut self,
        conv: ConvId,
        e1: Edge,
        e2: Edge,
        f1: Edge,
        f2: Edge,
        started_ns: u64,
        out: &mut Outbox,
    ) {
        self.inflight.insert(
            conv,
            InFlight {
                e1,
                partner: self.rank,
                started_ns,
            },
        );
        self.reserved.insert(e2);
        let fs = [f1, f2];
        let mut fstate = [FState::RemotePending; 2];
        let mut failed = false;
        for i in 0..2 {
            if self.part.owner(fs[i].src()) == self.rank {
                if self.occupied(fs[i]) {
                    fstate[i] = FState::Failed;
                    failed = true;
                } else {
                    self.potential.insert(fs[i]);
                    fstate[i] = FState::LocalReserved;
                }
            }
        }
        let mut awaiting = 0usize;
        if !failed {
            for i in 0..2 {
                if fstate[i] == FState::RemotePending {
                    out.push(
                        self.part.owner(fs[i].src()),
                        Msg::Validate { conv, edge: fs[i] },
                    );
                    awaiting += 1;
                }
            }
        }
        let validate_sent_ns = if awaiting > 0 { self.obs.now() } else { 0 };
        self.serving.insert(
            conv,
            PartnerConv {
                initiator: self.rank,
                e1,
                e2,
                fs,
                fstate,
                awaiting,
                failed,
                acks_needed: 0,
                validate_sent_ns,
                commit_sent_ns: 0,
            },
        );
        if awaiting == 0 {
            debug_assert!(failed, "a foreign replacement always awaits validation");
            self.partner_abort(conv, RejectReason::ParallelEdge, out);
        }
    }

    /// Draw the partner rank with probability `q_j` (Algorithm 2 line 2).
    fn sample_partner(&mut self) -> usize {
        let total = *self.cumq.last().expect("nonempty q");
        let u: f64 = self.rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        let idx = self.cumq.partition_point(|&c| c <= u);
        idx.min(self.cumq.len() - 1)
    }

    /// Abort bookkeeping for one of this rank's own operations whose
    /// first edge is still reserved: release it, count the reason, and
    /// forfeit the operation once the consecutive-abort budget runs out.
    /// Shared by the protocol path ([`RankState::on_abort`]) and the
    /// inline abort arms of the local fast path.
    fn abort_own(&mut self, e1: Edge, reason: RejectReason) {
        let released = self.reserved.remove(&e1);
        debug_assert!(released, "in-flight e1 was not reserved");
        self.count_abort(reason);
    }

    /// [`abort_own`] without the `e1` release, for speculative-round
    /// attempts that never reserved their first edge.
    fn count_abort(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::SelfLoop => self.stats.aborts_loop += 1,
            RejectReason::Useless => self.stats.aborts_useless += 1,
            RejectReason::ParallelEdge => self.stats.aborts_parallel += 1,
            RejectReason::Contended => self.stats.aborts_contended += 1,
        }
        self.consecutive_aborts += 1;
        if self.consecutive_aborts >= MAX_CONSECUTIVE_ABORTS {
            self.stats.forfeited += 1;
            self.remaining = self.remaining.saturating_sub(1);
            self.consecutive_aborts = 0;
        }
    }

    fn on_abort(&mut self, conv: ConvId, reason: RejectReason) {
        let op = self
            .inflight
            .remove(&conv)
            .expect("abort for conversation not in flight");
        self.abort_own(op.e1, reason);
    }

    fn on_done(&mut self, conv: ConvId) {
        let op = self
            .inflight
            .remove(&conv)
            .expect("done for conversation not in flight");
        // `op.e1` left `reserved` when the commit applied, but it may be
        // reserved *again* by now: once removed from the store, the same
        // edge value can be re-created as another conversation's
        // replacement and sampled by a later operation before this Done
        // bookkeeping runs, so its absence cannot be asserted here.
        self.obs.rtt_since(MsgKind::Propose, op.started_ns);
        self.remaining -= 1;
        self.consecutive_aborts = 0;
        self.stats.performed += 1;
        if op.partner == self.rank {
            self.stats.performed_local += 1;
        } else {
            self.stats.performed_global += 1;
        }
    }

    /// Early completion of a global operation: the initiator's own update
    /// has been applied (the partner's `CommitRemove` arrived), so the
    /// next operation may start; the partner's `Done` is still awaited
    /// for end-of-step accounting.
    fn complete_early(&mut self, conv: ConvId) {
        let op = self
            .inflight
            .remove(&conv)
            .expect("commit for conversation not in flight");
        debug_assert_ne!(
            op.partner, self.rank,
            "local switches never commit remotely"
        );
        self.obs.rtt_since(MsgKind::Propose, op.started_ns);
        self.remaining -= 1;
        self.consecutive_aborts = 0;
        self.stats.performed += 1;
        self.stats.performed_global += 1;
        let fresh = self.pending_done.insert(conv);
        debug_assert!(fresh);
    }

    // ------------------------------------------------------------------
    // Partner role
    // ------------------------------------------------------------------

    fn on_propose(&mut self, src: usize, conv: ConvId, e1: Edge, out: &mut Outbox) {
        self.stats.proposals_served += 1;
        self.obs
            .gauge(GaugeKind::ServingDepth, self.serving.len() as u64 + 1);
        // Sample the second edge, skipping locked edges.
        let sample_start = self.obs.now();
        let mut chosen = None;
        if self.store.num_edges() > 0 {
            for _ in 0..SAMPLE_ATTEMPTS {
                let e = self.store.sample(&mut self.rng).expect("store nonempty");
                if !self.reserved.contains(&e) {
                    chosen = Some(e);
                    break;
                }
            }
        }
        self.obs.span_since(Phase::Sample, sample_start);
        let Some(e2) = chosen else {
            out.push(
                src,
                Msg::Abort {
                    conv,
                    reason: RejectReason::Contended,
                },
            );
            return;
        };
        debug_assert_ne!(e1, e2, "e1 is foreign or locally reserved");
        let legality_start = self.obs.now();
        let kind = flip_kind(&mut self.rng);
        match recombine(
            OrientedEdge::from_edge(e1),
            OrientedEdge::from_edge(e2),
            kind,
        ) {
            Recombination::Rejected(reason) => {
                self.obs.span_since(Phase::Legality, legality_start);
                out.push(src, Msg::Abort { conv, reason });
            }
            Recombination::Candidate { f1, f2 } => {
                self.reserved.insert(e2);
                // Validate both replacements concurrently (the critical
                // path is one round trip, not two): local checks first;
                // remote requests only if the local ones passed.
                let fs = [f1, f2];
                let mut fstate = [FState::RemotePending; 2];
                let mut failed = false;
                for i in 0..2 {
                    if self.part.owner(fs[i].src()) == self.rank {
                        if self.occupied(fs[i]) {
                            fstate[i] = FState::Failed;
                            failed = true;
                        } else {
                            self.potential.insert(fs[i]);
                            fstate[i] = FState::LocalReserved;
                        }
                    }
                }
                self.obs.span_since(Phase::Legality, legality_start);
                let mut awaiting = 0usize;
                if !failed {
                    for i in 0..2 {
                        if fstate[i] == FState::RemotePending {
                            out.push(
                                self.part.owner(fs[i].src()),
                                Msg::Validate { conv, edge: fs[i] },
                            );
                            awaiting += 1;
                        }
                    }
                }
                let validate_sent_ns = if awaiting > 0 { self.obs.now() } else { 0 };
                self.serving.insert(
                    conv,
                    PartnerConv {
                        initiator: src,
                        e1,
                        e2,
                        fs,
                        fstate,
                        awaiting,
                        failed,
                        acks_needed: 0,
                        validate_sent_ns,
                        commit_sent_ns: 0,
                    },
                );
                if awaiting == 0 {
                    if failed {
                        self.partner_abort(conv, RejectReason::ParallelEdge, out);
                    } else {
                        self.partner_commit(conv, out);
                    }
                }
            }
        }
    }

    fn on_validate_reply(&mut self, conv: ConvId, edge: Edge, ok: bool, out: &mut Outbox) {
        let (awaiting, failed, sent_ns) = {
            let c = self.serving.get_mut(&conv).expect("conversation exists");
            let i = if c.fs[0] == edge { 0 } else { 1 };
            debug_assert_eq!(c.fs[i], edge, "reply for unknown replacement");
            debug_assert_eq!(c.fstate[i], FState::RemotePending);
            c.fstate[i] = if ok {
                FState::RemoteReserved
            } else {
                FState::Failed
            };
            c.failed |= !ok;
            c.awaiting -= 1;
            (c.awaiting, c.failed, c.validate_sent_ns)
        };
        if awaiting == 0 {
            self.obs.rtt_since(MsgKind::Validate, sent_ns);
            if failed {
                self.partner_abort(conv, RejectReason::ParallelEdge, out);
            } else {
                self.partner_commit(conv, out);
            }
        }
    }

    fn partner_abort(&mut self, conv: ConvId, reason: RejectReason, out: &mut Outbox) {
        let c = self.serving.remove(&conv).expect("conversation exists");
        debug_assert_eq!(c.awaiting, 0, "abort with validations in flight");
        // Release everything that was reserved.
        for i in 0..2 {
            match c.fstate[i] {
                FState::LocalReserved => {
                    let had = self.potential.remove(&c.fs[i]);
                    debug_assert!(had);
                }
                FState::RemoteReserved => {
                    out.push(
                        self.part.owner(c.fs[i].src()),
                        Msg::Release {
                            conv,
                            edge: c.fs[i],
                        },
                    );
                }
                FState::RemotePending | FState::Failed => {}
            }
        }
        let had = self.reserved.remove(&c.e2);
        debug_assert!(had);
        out.push(c.initiator, Msg::Abort { conv, reason });
    }

    fn partner_commit(&mut self, conv: ConvId, out: &mut Outbox) {
        let c = *self.serving.get(&conv).expect("conversation exists");
        debug_assert!(!c.failed && c.awaiting == 0);
        // Remove the partner's own old edge.
        self.apply_remove(c.e2);
        // Materialize / request the replacements.
        let mut acks = 0usize;
        for f in c.fs {
            let owner = self.part.owner(f.src());
            if owner == self.rank {
                self.apply_insert(f);
            } else {
                out.push(owner, Msg::CommitAdd { conv, edge: f });
                acks += 1;
            }
        }
        // Remove the initiator's old edge.
        if c.initiator == self.rank {
            self.apply_remove(c.e1);
        } else {
            out.push(c.initiator, Msg::CommitRemove { conv, edge: c.e1 });
            acks += 1;
        }
        if acks == 0 {
            self.partner_finish(conv, out);
        } else {
            let commit_sent_ns = self.obs.now();
            let c = self.serving.get_mut(&conv).unwrap();
            c.acks_needed = acks;
            c.commit_sent_ns = commit_sent_ns;
        }
    }

    fn on_commit_ack(&mut self, conv: ConvId, out: &mut Outbox) {
        let (remaining, sent_ns, remote_add, remote_remove) = {
            let c = self.serving.get_mut(&conv).expect("conversation exists");
            debug_assert!(c.acks_needed > 0);
            c.acks_needed -= 1;
            let remote_add = c.fs.iter().any(|f| self.part.owner(f.src()) != self.rank);
            let remote_remove = c.initiator != self.rank;
            (c.acks_needed, c.commit_sent_ns, remote_add, remote_remove)
        };
        if remaining == 0 {
            if remote_add {
                self.obs.rtt_since(MsgKind::CommitAdd, sent_ns);
            }
            if remote_remove {
                self.obs.rtt_since(MsgKind::CommitRemove, sent_ns);
            }
            self.partner_finish(conv, out);
        }
    }

    fn partner_finish(&mut self, conv: ConvId, out: &mut Outbox) {
        let c = self.serving.remove(&conv).expect("conversation exists");
        if c.initiator == self.rank {
            self.on_done(conv);
        } else {
            out.push(c.initiator, Msg::Done { conv });
        }
    }

    /// Remove a locally-owned, reserved old edge and record the visit.
    fn apply_remove(&mut self, e: Edge) {
        let apply_start = self.obs.now();
        let was_reserved = self.reserved.remove(&e);
        debug_assert!(was_reserved, "commit removal of unreserved edge {e}");
        let removed = self.store.remove(e);
        debug_assert!(removed, "commit removal of missing edge {e}");
        self.tracker.record_removal(e);
        self.obs.span_since(Phase::SwitchApply, apply_start);
    }

    /// Materialize a locally-owned, reserved replacement edge.
    fn apply_insert(&mut self, f: Edge) {
        let apply_start = self.obs.now();
        let was_potential = self.potential.remove(&f);
        debug_assert!(was_potential, "commit insertion of unreserved edge {f}");
        let inserted = self.store.insert(f);
        debug_assert!(inserted, "potential edge {f} collided at commit");
        self.obs.span_since(Phase::SwitchApply, apply_start);
    }

    /// An edge may not be created if it exists or is about to exist.
    /// The `potential` set is empty whenever no conversation is mid
    /// validation — always on a quiet rank, and in particular on every
    /// fully-local switch at p = 1 — so its probe hides behind a length
    /// check.
    fn occupied(&self, f: Edge) -> bool {
        self.store.contains(f) || (!self.potential.is_empty() && self.potential.contains(&f))
    }

    // ------------------------------------------------------------------
    // Validator role
    // ------------------------------------------------------------------

    fn on_validate(&mut self, src: usize, conv: ConvId, edge: Edge, out: &mut Outbox) {
        debug_assert_eq!(self.part.owner(edge.src()), self.rank, "misrouted Validate");
        self.stats.validations_served += 1;
        let legality_start = self.obs.now();
        let occupied = self.occupied(edge);
        self.obs.span_since(Phase::Legality, legality_start);
        if occupied {
            out.push(src, Msg::ValidateFail { conv, edge });
        } else {
            self.potential.insert(edge);
            out.push(src, Msg::ValidateOk { conv, edge });
        }
    }

    fn on_commit_add(&mut self, src: usize, conv: ConvId, edge: Edge, out: &mut Outbox) {
        self.apply_insert(edge);
        out.push(src, Msg::CommitAck { conv });
    }

    fn on_commit_remove(&mut self, src: usize, conv: ConvId, edge: Edge, out: &mut Outbox) {
        self.apply_remove(edge);
        out.push(src, Msg::CommitAck { conv });
        if conv.initiator as usize == self.rank {
            self.complete_early(conv);
        }
    }

    fn on_release(&mut self, edge: Edge) {
        let was_potential = self.potential.remove(&edge);
        debug_assert!(was_potential, "Release for unreserved edge {edge}");
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    /// Feed one protocol message into the state machine.
    ///
    /// # Panics
    /// Panics on `EndOfStep`/`Coll`/`Batch` (step-level traffic and
    /// framing are the driver's responsibility) and on protocol
    /// violations in debug builds.
    pub fn handle(&mut self, src: usize, msg: Msg, out: &mut Outbox) {
        match msg {
            Msg::Propose { conv, e1 } => self.on_propose(src, conv, e1, out),
            Msg::Validate { conv, edge } => self.on_validate(src, conv, edge, out),
            Msg::ValidateOk { conv, edge } => self.on_validate_reply(conv, edge, true, out),
            Msg::ValidateFail { conv, edge } => self.on_validate_reply(conv, edge, false, out),
            Msg::Release { edge, .. } => self.on_release(edge),
            Msg::CommitAdd { conv, edge } => self.on_commit_add(src, conv, edge, out),
            Msg::CommitRemove { conv, edge } => self.on_commit_remove(src, conv, edge, out),
            Msg::CommitAck { conv } => self.on_commit_ack(conv, out),
            Msg::Done { conv } => {
                if !self.pending_done.remove(&conv) {
                    self.on_done(conv);
                }
            }
            Msg::Abort { conv, reason } => self.on_abort(conv, reason),
            Msg::BatchPropose { reqs } => self.on_batch_propose(src, reqs, out),
            Msg::BatchVerdict { verdicts } => self.on_batch_verdict(verdicts),
            Msg::EndOfStep | Msg::Coll(_) | Msg::Batch(_) => {
                unreachable!("driver-level message leaked into RankState")
            }
            Msg::TradeLoad { .. } | Msg::TradeHome { .. } | Msg::TradeVisit { .. } => {
                unreachable!("Curveball traffic routed into the switch state machine")
            }
        }
    }
}
