//! Correctness tests for the distributed protocol, run through both the
//! threaded driver (real message passing) and the deterministic driver.

use super::engine::{parallel_edge_switch, parallel_edge_switch_with, ParallelOutcome};
use super::sim::{simulate_parallel, simulate_parallel_with};
use crate::config::{ParallelConfig, StepSize};
use edgeswitch_dist::root_rng;
use edgeswitch_graph::generators::{contact_network, erdos_renyi_gnm, ContactParams};
use edgeswitch_graph::{Graph, Partitioner, SchemeKind};

fn test_graph(seed: u64) -> Graph {
    let mut rng = root_rng(seed);
    erdos_renyi_gnm(300, 1500, &mut rng)
}

fn check_outcome(g0: &Graph, out: &ParallelOutcome, t: u64) {
    // Simplicity and internal consistency of the result.
    out.graph.check_invariants().expect("result must be simple");
    // Degree sequence is invariant under switching.
    assert_eq!(out.graph.degree_sequence(), g0.degree_sequence());
    // Edge count conserved, both globally and as the per-rank sum.
    assert_eq!(out.graph.num_edges(), g0.num_edges());
    assert_eq!(out.final_edges.iter().sum::<u64>() as usize, g0.num_edges());
    // Every operation is accounted for.
    assert_eq!(out.performed() + out.forfeited(), t);
    assert_eq!(out.forfeited(), 0, "healthy graphs never forfeit");
    // Visit tracking is within bounds.
    let vr = out.visit_rate();
    assert!((0.0..=1.0).contains(&vr));
    assert!(vr > 0.0, "operations must visit edges");
}

#[test]
fn threaded_engine_four_ranks_cp() {
    let g = test_graph(1);
    let t = 2000;
    let cfg = ParallelConfig::new(4)
        .with_step_size(StepSize::FractionOfT(10))
        .with_seed(11);
    let out = parallel_edge_switch(&g, t, &cfg);
    check_outcome(&g, &out, t);
    assert_eq!(out.steps, 10);
    // All ranks participated.
    assert!(out.per_rank.iter().all(|s| s.performed > 0));
    // Some switches must have been global (cross-partition).
    assert!(out.per_rank.iter().map(|s| s.performed_global).sum::<u64>() > 0);
}

#[test]
fn threaded_engine_all_schemes() {
    let g = test_graph(2);
    let t = 800;
    for scheme in SchemeKind::all() {
        let cfg = ParallelConfig::new(3)
            .with_scheme(scheme)
            .with_step_size(StepSize::FractionOfT(4))
            .with_seed(7);
        let out = parallel_edge_switch(&g, t, &cfg);
        check_outcome(&g, &out, t);
    }
}

#[test]
fn threaded_engine_single_rank() {
    let g = test_graph(3);
    let t = 500;
    let cfg = ParallelConfig::new(1).with_seed(5);
    let out = parallel_edge_switch(&g, t, &cfg);
    check_outcome(&g, &out, t);
    // p = 1: everything is a local switch.
    assert_eq!(out.per_rank[0].performed_local, t);
    assert_eq!(out.per_rank[0].performed_global, 0);
}

#[test]
fn threaded_engine_single_step() {
    let g = test_graph(4);
    let t = 1000;
    let cfg = ParallelConfig::new(4)
        .with_scheme(SchemeKind::HashUniversal)
        .with_step_size(StepSize::SingleStep)
        .with_seed(9);
    let out = parallel_edge_switch(&g, t, &cfg);
    check_outcome(&g, &out, t);
    assert_eq!(out.steps, 1);
}

#[test]
fn sim_driver_matches_invariants_various_p() {
    let g = test_graph(5);
    let t = 1500;
    for p in [1, 2, 5, 16, 64] {
        let cfg = ParallelConfig::new(p)
            .with_scheme(SchemeKind::HashDivision)
            .with_step_size(StepSize::FractionOfT(5))
            .with_seed(13);
        let out = simulate_parallel(&g, t, &cfg);
        check_outcome(&g, &out, t);
    }
}

#[test]
fn sim_driver_is_deterministic() {
    let g = test_graph(6);
    let cfg = ParallelConfig::new(8).with_seed(21);
    let a = simulate_parallel(&g, 1000, &cfg);
    let b = simulate_parallel(&g, 1000, &cfg);
    assert!(a.graph.same_edge_set(&b.graph), "same seed, same result");
    assert_eq!(a.per_rank, b.per_rank);
}

#[test]
fn sim_driver_seeds_differ() {
    let g = test_graph(7);
    let a = simulate_parallel(&g, 1000, &ParallelConfig::new(4).with_seed(1));
    let b = simulate_parallel(&g, 1000, &ParallelConfig::new(4).with_seed(2));
    assert!(!a.graph.same_edge_set(&b.graph));
}

#[test]
fn visit_rate_tracks_target_in_parallel() {
    // The Section 3.1 conversion applies unchanged to the parallel
    // process.
    let g = test_graph(8);
    let m = g.num_edges() as u64;
    for &x in &[0.3, 0.7] {
        let t = edgeswitch_dist::switch_ops_for_visit_rate(m, x);
        let cfg = ParallelConfig::new(8)
            .with_scheme(SchemeKind::HashUniversal)
            .with_step_size(StepSize::FractionOfT(10))
            .with_seed(3);
        let out = simulate_parallel(&g, t, &cfg);
        let observed = out.visit_rate();
        assert!((observed - x).abs() < 0.05, "x = {x}: observed {observed}");
    }
}

#[test]
fn workload_follows_multinomial_quotas() {
    // With a balanced partition, the per-rank workload should be near
    // t/p.
    let g = test_graph(9);
    let t = 4000u64;
    let p = 4;
    let cfg = ParallelConfig::new(p)
        .with_step_size(StepSize::FractionOfT(8))
        .with_seed(17);
    let out = simulate_parallel(&g, t, &cfg);
    let expect = t as f64 / p as f64;
    for s in &out.per_rank {
        assert!(
            (s.performed as f64 - expect).abs() < 0.3 * expect,
            "workload {} far from {expect}",
            s.performed
        );
    }
}

#[test]
fn contact_graph_with_adversarial_partitioner() {
    // Explicit partitioner path + a graph whose clustering stresses the
    // validator chain (many third-party replacement owners).
    let mut rng = root_rng(10);
    let g = contact_network(
        ContactParams {
            n: 600,
            community_size: 40,
            intra_degree: 12.0,
            inter_degree: 2.0,
        },
        &mut rng,
    );
    let part = Partitioner::hash_multiplication(5);
    let t = 1200;
    let cfg = ParallelConfig::new(5)
        .with_scheme(SchemeKind::HashMultiplication)
        .with_step_size(StepSize::FractionOfT(6))
        .with_seed(23);
    let threaded = parallel_edge_switch_with(&g, t, &cfg, &part);
    check_outcome(&g, &threaded, t);
    let simulated = simulate_parallel_with(&g, t, &cfg, &part);
    check_outcome(&g, &simulated, t);
}

#[test]
fn zero_ops_is_identity() {
    let g = test_graph(11);
    let cfg = ParallelConfig::new(4).with_seed(2);
    let out = simulate_parallel(&g, 0, &cfg);
    assert!(out.graph.same_edge_set(&g));
    assert_eq!(out.performed(), 0);
    assert_eq!(out.steps, 0);
}

#[test]
fn aborts_happen_but_do_not_leak() {
    // A dense-ish graph provokes parallel-edge aborts; the run must
    // still balance its books (checked inside into_parts debug asserts
    // and by op accounting).
    let mut rng = root_rng(12);
    let g = erdos_renyi_gnm(40, 300, &mut rng); // ~38% density
    let t = 1000;
    let cfg = ParallelConfig::new(4)
        .with_step_size(StepSize::FractionOfT(4))
        .with_seed(31);
    let out = simulate_parallel(&g, t, &cfg);
    check_outcome(&g, &out, t);
    let aborts: u64 = out.per_rank.iter().map(|s| s.aborts()).sum();
    assert!(aborts > 0, "density should provoke rejections");
}

#[test]
fn more_ranks_than_meaningful_partitions() {
    // p close to n: many near-empty partitions must not wedge the run.
    let mut rng = root_rng(13);
    let g = erdos_renyi_gnm(60, 240, &mut rng);
    let t = 300;
    let cfg = ParallelConfig::new(30)
        .with_scheme(SchemeKind::HashDivision)
        .with_step_size(StepSize::FractionOfT(3))
        .with_seed(37);
    let out = simulate_parallel(&g, t, &cfg);
    out.graph.check_invariants().unwrap();
    assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
    assert_eq!(out.performed() + out.forfeited(), t);
}
