//! Deterministic single-threaded driver of the distributed protocol.
//!
//! Runs the same [`RankState`] machines as the threaded engine, but
//! delivers messages from a global FIFO queue in one thread. Results are
//! bit-reproducible for a given seed, which makes this the driver of
//! choice for similarity experiments (Figures 7–11, Table 3) and for
//! world sizes far beyond the machine's core count. The virtual-time
//! scaling simulator in `edgeswitch-scalesim` extends the same pattern
//! with a cost model.

use super::engine::ParallelOutcome;
use super::msg::{Msg, Outbox};
use super::rank::{RankState, StartResult};
use crate::config::{ParallelConfig, QuotaPolicy};
use crate::visit::VisitTracker;
use edgeswitch_dist::multinomial::multinomial;
use edgeswitch_dist::parallel::trial_share;
use edgeswitch_graph::store::{assemble_graph, build_stores};
use edgeswitch_graph::{Graph, Partitioner};
use mpilite::CommStats;
use std::collections::VecDeque;

/// Deterministically simulate `t` operations of the parallel algorithm
/// on a world of `config.processors` virtual ranks.
pub fn simulate_parallel(graph: &Graph, t: u64, config: &ParallelConfig) -> ParallelOutcome {
    let mut rng = edgeswitch_dist::root_rng(config.seed ^ 0x9a17);
    let part = Partitioner::build(config.scheme, graph, config.processors, &mut rng);
    simulate_parallel_with(graph, t, config, &part)
}

/// [`simulate_parallel`] with an explicit partitioner.
pub fn simulate_parallel_with(
    graph: &Graph,
    t: u64,
    config: &ParallelConfig,
    part: &Partitioner,
) -> ParallelOutcome {
    let p = config.processors;
    assert_eq!(part.num_parts(), p);
    let stores = build_stores(graph, part);
    let initial_edges: Vec<u64> = stores.iter().map(|s| s.num_edges() as u64).collect();
    let n = graph.num_vertices();

    let mut states: Vec<RankState> = stores
        .into_iter()
        .enumerate()
        .map(|(rank, store)| RankState::new(rank, part.clone(), store, config.seed))
        .collect();
    let mut msg_counts = vec![CommStats::default(); p];

    let s = config.step_size.resolve(t);
    let steps = t.div_ceil(s.max(1));
    let uniform_q = config.quota_policy == QuotaPolicy::Uniform;
    for step in 0..steps {
        let step_ops = if step == steps - 1 { t - s * (steps - 1) } else { s };
        run_step(&mut states, step_ops, &mut msg_counts, uniform_q);
    }

    // Gather results exactly like the threaded engine.
    let mut per_rank = Vec::with_capacity(p);
    let mut final_edges = Vec::with_capacity(p);
    let mut tracker_acc: Option<VisitTracker> = None;
    let mut final_stores = Vec::with_capacity(p);
    for state in states {
        let (store, tracker, stats) = state.into_parts();
        per_rank.push(stats);
        final_edges.push(store.num_edges() as u64);
        final_stores.push(store);
        match &mut tracker_acc {
            None => tracker_acc = Some(tracker),
            Some(acc) => acc.merge_disjoint(tracker),
        }
    }
    ParallelOutcome {
        graph: assemble_graph(n, &final_stores),
        steps,
        per_rank,
        final_edges,
        initial_edges,
        comm: msg_counts,
        tracker: tracker_acc.unwrap_or_else(|| VisitTracker::new(std::iter::empty())),
    }
}

/// One step of the simulated world.
fn run_step(states: &mut [RankState], step_ops: u64, msg_counts: &mut [CommStats], uniform_q: bool) {
    let p = states.len();
    // Probability vector from current edge counts (the allgather).
    let counts: Vec<u64> = states.iter().map(|st| st.edge_count()).collect();
    let total: u64 = counts.iter().sum();
    let q: Vec<f64> = if total == 0 || uniform_q {
        vec![1.0 / p as f64; p]
    } else {
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    };
    // Algorithm 5, faithfully: each rank draws a multinomial over its
    // trial share from its own stream; quotas are the column sums.
    let mut quota = vec![0u64; p];
    for (i, st) in states.iter_mut().enumerate() {
        let share = trial_share(step_ops, p, i);
        let row = multinomial(share, &q, st.rng_mut());
        for (qj, xi) in quota.iter_mut().zip(row) {
            *qj += xi;
        }
    }
    for (st, &qi) in states.iter_mut().zip(&quota) {
        st.begin_step(qi, &q);
    }

    // Event loop: global FIFO, round-robin op starts.
    let mut queue: VecDeque<(usize, usize, Msg)> = VecDeque::new();
    let mut out = Outbox::new();
    loop {
        while let Some((dst, src, msg)) = queue.pop_front() {
            states[dst].handle(src, msg, &mut out);
            while let Some((d2, m2)) = out.pop() {
                if d2 != dst {
                    msg_counts[dst].messages_sent += 1;
                    msg_counts[d2].messages_received += 1;
                }
                queue.push_back((d2, dst, m2));
            }
        }
        let mut any_started = false;
        for i in 0..p {
            if let StartResult::Started = states[i].try_start(&mut out) {
                any_started = true;
                while let Some((d2, m2)) = out.pop() {
                    if d2 != i {
                        msg_counts[i].messages_sent += 1;
                        msg_counts[d2].messages_received += 1;
                    }
                    queue.push_back((d2, i, m2));
                }
            }
        }
        if !any_started && queue.is_empty() {
            assert!(
                states.iter().all(|st| st.step_done()),
                "simulated world wedged: quiescent but quotas unfinished"
            );
            break;
        }
    }
    debug_assert!(states.iter().all(|st| !st.serving_pending()));
}
