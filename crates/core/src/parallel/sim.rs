//! Deterministic single-threaded driver of the distributed protocol.
//!
//! Runs the same [`RankState`](super::rank::RankState) machines as the
//! threaded engine, but delivers messages from a global FIFO queue in
//! one thread — [`FifoTransport`] plugged into the shared world loop of
//! [`super::harness`]. Results are bit-reproducible for a given seed,
//! which makes this the driver of choice for similarity experiments
//! (Figures 7–11, Table 3) and for world sizes far beyond the machine's
//! core count. The virtual-time scaling simulator in
//! `edgeswitch-scalesim` runs the *same* loop with a cost-charging
//! transport, so the two produce identical logical results.

use super::harness::{run_simulated_world, FifoTransport, ParallelOutcome};
use crate::config::ParallelConfig;
use edgeswitch_graph::{Graph, Partitioner};

/// Deterministically simulate `t` operations of the parallel algorithm
/// on a world of `config.processors` virtual ranks.
pub fn simulate_parallel(graph: &Graph, t: u64, config: &ParallelConfig) -> ParallelOutcome {
    let mut rng = config.root_rng();
    let part = Partitioner::build(config.scheme, graph, config.processors, &mut rng);
    simulate_parallel_with(graph, t, config, &part)
}

/// [`simulate_parallel`] with an explicit partitioner.
pub fn simulate_parallel_with(
    graph: &Graph,
    t: u64,
    config: &ParallelConfig,
    part: &Partitioner,
) -> ParallelOutcome {
    let mut transport = FifoTransport::new();
    run_simulated_world(graph, t, config, part, &mut transport)
}
