//! The distributed-memory parallel edge-switch algorithm (Sections 4–5).
//!
//! - [`rank`]: the pure per-processor protocol state machine,
//! - [`msg`]: the wire protocol,
//! - [`harness`]: the shared step machinery — [`Transport`] /
//!   [`StepHarness`] / per-step [`StepTelemetry`] — every driver runs on,
//! - [`engine`]: the threaded driver over `mpilite` ranks,
//! - [`proc`]: the process-backed driver over shared-memory rings
//!   ([`wire`] is its byte codec for [`Msg`]),
//! - [`sim`]: a deterministic single-threaded driver for large virtual
//!   worlds and similarity experiments,
//! - [`resume`]: the pausable form of the simulated driver, with
//!   step-boundary snapshots for checkpoint/resume,
//! - [`trade`]: the Curveball randomizer's drivers (global trades over
//!   the same transports; see [`crate::trade`]).

pub mod engine;
pub mod harness;
pub mod msg;
pub mod proc;
pub mod rank;
pub mod resume;
pub mod sim;
pub mod trade;
pub mod wire;

#[cfg(test)]
mod rank_tests;
#[cfg(test)]
mod tests;

pub use engine::{parallel_edge_switch, parallel_edge_switch_with};
pub use harness::{
    assemble_outcome, probability_vector, run_rank_step, run_simulated_world, run_world_step,
    FifoTransport, MpiliteTransport, MsgCounts, ParallelOutcome, RankOutput, RankTransport,
    RunMeta, StepHarness, StepScratch, StepTelemetry, Transport, WorldTransport,
};
pub use msg::{ConvId, Msg, MsgKind, Outbox};
pub use proc::{
    child_entry_from_env, parallel_edge_switch_proc, parallel_edge_switch_proc_gen,
    process_backend_supported, try_parallel_edge_switch_proc, try_parallel_edge_switch_proc_gen,
    ProcError, ProcTransport,
};
pub use rank::{RankCheckpoint, RankState, RankStats, StartResult};
pub use resume::{SimWorld, WorldSnapshot};
pub use sim::{simulate_parallel, simulate_parallel_with};
pub use trade::{
    parallel_curveball, parallel_curveball_with, run_simulated_trades, simulate_curveball,
    simulate_curveball_with,
};
