//! Pausable, checkpointable form of the FIFO-simulated world.
//!
//! [`SimWorld`] runs exactly the step loop of
//! [`run_simulated_world`](super::harness::run_simulated_world) over a
//! [`FifoTransport`](super::harness::FifoTransport), but hands control
//! back to the caller between steps. At every step boundary the
//! protocol's transient state is empty (the completion-ack discipline of
//! [`RankState`] guarantees it), so the whole world reduces to its
//! per-rank checkpoints plus run-level accumulators — a
//! [`WorldSnapshot`] — and a killed process can rebuild the world and
//! continue to a bit-identical result. This is the engine behind the job
//! service's checkpoint/resume guarantee; the conformance tests compare
//! resumed runs against uninterrupted ones per seed and rank count.
//!
//! Two deliberate restrictions keep the snapshot closed:
//!
//! - **Unobserved.** Probes hold run-length host state (clocks, open
//!   spans) that cannot be serialized, so `SimWorld` forces
//!   [`ObsSpec::Off`](crate::obs::ObsSpec) regardless of the config.
//!   Progress reporting comes from the per-step [`StepTelemetry`]
//!   returned by [`SimWorld::step`] instead.
//! - **Partitioner by reconstruction.** The partitioner is a pure
//!   function of `(graph, config)` — both resume inputs — so snapshots
//!   record neither it nor the graph's initial form.

use super::harness::{
    assemble_outcome, run_world_step, FifoTransport, ParallelOutcome, RankOutput, StepHarness,
    StepTelemetry,
};
use super::msg::Outbox;
use super::rank::{RankCheckpoint, RankState};
use crate::config::ParallelConfig;
use edgeswitch_graph::store::build_stores;
use edgeswitch_graph::{Graph, Partitioner};
use mpilite::CommStats;

/// The complete persistent state of a [`SimWorld`] at a step boundary.
///
/// Serialized by the snapshot codec in [`super::wire`]. Resuming needs
/// the original graph and config alongside it (the job service persists
/// the job spec separately); the identity fields (`seed`, `p`, `t`)
/// exist so a resume against the wrong spec fails loudly instead of
/// silently diverging.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldSnapshot {
    /// Seed of the run (must match the config on resume).
    pub seed: u64,
    /// World size (must match the config on resume).
    pub p: usize,
    /// Vertex count of the graph under randomization.
    pub n: usize,
    /// Total operation budget.
    pub t: u64,
    /// Next step to execute (steps `0..next_step` are complete).
    pub next_step: u64,
    /// Per-rank checkpoints, rank order.
    pub ranks: Vec<RankCheckpoint>,
    /// Per-rank communication counters, rank order.
    pub comm: Vec<CommStats>,
    /// Telemetry of the completed steps.
    pub telemetry: Vec<StepTelemetry>,
    /// Initial `|E_i|` per rank (a run-start constant, carried for the
    /// final outcome).
    pub initial_edges: Vec<u64>,
}

/// The FIFO-simulated world as a pausable engine: construct, call
/// [`SimWorld::step`] until [`SimWorld::is_done`], then
/// [`SimWorld::finish`]. [`SimWorld::snapshot`] between any two steps
/// captures everything needed by [`SimWorld::resume`] to continue the
/// run bit-identically in a fresh process.
pub struct SimWorld {
    states: Vec<RankState>,
    comm_stats: Vec<CommStats>,
    transport: FifoTransport,
    harness: StepHarness,
    telemetry: Vec<StepTelemetry>,
    initial_edges: Vec<u64>,
    n: usize,
    t: u64,
    seed: u64,
    p: usize,
    next_step: u64,
    out: Outbox,
}

impl SimWorld {
    /// Set up a `t`-operation run of the parallel algorithm on a world
    /// of `config.processors` virtual ranks. Mirrors
    /// [`simulate_parallel`](super::sim::simulate_parallel) exactly —
    /// same partitioner draw, same store construction, same per-rank
    /// streams — except that observation is forced off (see the module
    /// docs).
    pub fn new(graph: &Graph, t: u64, config: &ParallelConfig) -> Self {
        let mut rng = config.root_rng();
        let part = Partitioner::build(config.scheme, graph, config.processors, &mut rng);
        let p = config.processors;
        let stores = build_stores(graph, &part);
        let initial_edges: Vec<u64> = stores.iter().map(|s| s.num_edges() as u64).collect();
        let states: Vec<RankState> = stores
            .into_iter()
            .enumerate()
            .map(|(rank, store)| {
                RankState::new(rank, part.clone(), store, config.seed, config.window)
                    .with_fastpath(config.local_fastpath)
                    .with_spec_batch(config.spec_batch)
            })
            .collect();
        SimWorld {
            states,
            comm_stats: vec![CommStats::default(); p],
            transport: FifoTransport::new(),
            harness: StepHarness::new(t, config),
            telemetry: Vec::new(),
            initial_edges,
            n: graph.num_vertices(),
            t,
            seed: config.seed,
            p,
            next_step: 0,
            out: Outbox::new(),
        }
    }

    /// Total steps in the run.
    pub fn steps(&self) -> u64 {
        self.harness.steps()
    }

    /// Next step to execute (`steps()` once done).
    pub fn next_step(&self) -> u64 {
        self.next_step
    }

    /// Whether every step has run.
    pub fn is_done(&self) -> bool {
        self.next_step >= self.harness.steps()
    }

    /// Operations performed so far across ranks.
    pub fn performed(&self) -> u64 {
        self.states.iter().map(|st| st.stats.performed).sum()
    }

    /// Observed visit rate so far (over all partitions).
    pub fn visit_rate(&self) -> f64 {
        let initial: usize = self
            .states
            .iter()
            .map(|st| st.tracker.initial_count())
            .sum();
        if initial == 0 {
            return 0.0;
        }
        let visited: usize = self
            .states
            .iter()
            .map(|st| st.tracker.visited_count())
            .sum();
        visited as f64 / initial as f64
    }

    /// Execute the next step; returns its telemetry (`None` when the run
    /// is already complete).
    pub fn step(&mut self) -> Option<&StepTelemetry> {
        if self.is_done() {
            return None;
        }
        let tel = run_world_step(
            &mut self.transport,
            &mut self.states,
            &mut self.out,
            self.harness.step_ops(self.next_step),
            self.harness.uniform_q(),
            &mut self.comm_stats,
        );
        self.telemetry.push(tel);
        self.next_step += 1;
        self.telemetry.last()
    }

    /// Capture the complete world state at the current step boundary.
    pub fn snapshot(&self) -> WorldSnapshot {
        WorldSnapshot {
            seed: self.seed,
            p: self.p,
            n: self.n,
            t: self.t,
            next_step: self.next_step,
            ranks: self.states.iter().map(|st| st.checkpoint()).collect(),
            comm: self.comm_stats.clone(),
            telemetry: self.telemetry.clone(),
            initial_edges: self.initial_edges.clone(),
        }
    }

    /// Rebuild a world from a snapshot plus the run's original graph and
    /// config, positioned to continue at `snapshot.next_step`.
    ///
    /// The partitioner is re-derived from `(graph, config)` the same way
    /// [`SimWorld::new`] derives it; each rank is restored from its
    /// checkpoint (store in pool order, tracker from parts, RNG
    /// fast-forwarded to the recorded stream position).
    ///
    /// # Panics
    ///
    /// If `snap`'s identity fields contradict `config` — resuming a
    /// snapshot against the wrong job would silently diverge otherwise.
    pub fn resume(graph: &Graph, config: &ParallelConfig, snap: &WorldSnapshot) -> Self {
        assert_eq!(snap.seed, config.seed, "snapshot/config seed mismatch");
        assert_eq!(
            snap.p, config.processors,
            "snapshot/config world-size mismatch"
        );
        assert_eq!(
            snap.n,
            graph.num_vertices(),
            "snapshot/graph vertex mismatch"
        );
        assert_eq!(snap.ranks.len(), snap.p, "snapshot rank count mismatch");
        let mut rng = config.root_rng();
        let part = Partitioner::build(config.scheme, graph, config.processors, &mut rng);
        let states: Vec<RankState> = snap
            .ranks
            .iter()
            .map(|ckpt| {
                RankState::restore(part.clone(), config.seed, config.window, ckpt)
                    .with_fastpath(config.local_fastpath)
                    .with_spec_batch(config.spec_batch)
            })
            .collect();
        SimWorld {
            states,
            comm_stats: snap.comm.clone(),
            transport: FifoTransport::new(),
            harness: StepHarness::new(snap.t, config),
            telemetry: snap.telemetry.clone(),
            initial_edges: snap.initial_edges.clone(),
            n: snap.n,
            t: snap.t,
            seed: snap.seed,
            p: snap.p,
            next_step: snap.next_step,
            out: Outbox::new(),
        }
    }

    /// Tear down into the final [`ParallelOutcome`] (unobserved:
    /// `report` is `None`, like the process backend).
    pub fn finish(self) -> ParallelOutcome {
        assert!(self.is_done(), "finish called before the run completed");
        let outputs: Vec<RankOutput> = self
            .states
            .into_iter()
            .zip(self.comm_stats)
            .map(|(state, comm)| {
                let (store, tracker, stats, obs) = state.into_parts();
                RankOutput {
                    store,
                    tracker,
                    stats,
                    comm,
                    obs,
                }
            })
            .collect();
        assemble_outcome(
            self.n,
            self.harness.steps(),
            self.initial_edges,
            outputs,
            self.telemetry,
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::sim::simulate_parallel;
    use edgeswitch_dist::root_rng;
    use edgeswitch_graph::generators::erdos_renyi_gnm;

    fn outcomes_logically_equal(a: &ParallelOutcome, b: &ParallelOutcome) {
        assert!(a.graph.same_edge_set(&b.graph), "final graphs differ");
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.per_rank, b.per_rank);
        assert_eq!(a.final_edges, b.final_edges);
        assert_eq!(a.initial_edges, b.initial_edges);
        assert_eq!(a.tracker.visited_count(), b.tracker.visited_count());
        assert_eq!(a.telemetry.len(), b.telemetry.len());
        for (x, y) in a.telemetry.iter().zip(&b.telemetry) {
            assert_eq!(x.performed, y.performed);
            assert_eq!(x.started, y.started);
            assert_eq!(x.logical_msgs, y.logical_msgs);
        }
    }

    #[test]
    fn stepped_world_matches_one_shot_simulation() {
        for &p in &[1usize, 2, 4] {
            let mut rng = root_rng(101);
            let g = erdos_renyi_gnm(150, 600, &mut rng);
            let config = ParallelConfig::new(p).with_seed(33);
            let reference = simulate_parallel(&g, 500, &config);

            let mut world = SimWorld::new(&g, 500, &config);
            while world.step().is_some() {}
            let resumed = world.finish();
            outcomes_logically_equal(&reference, &resumed);
        }
    }

    #[test]
    fn snapshot_resume_is_bit_identical() {
        for &p in &[1usize, 2, 4] {
            for &seed in &[7u64, 19] {
                let mut rng = root_rng(202);
                let g = erdos_renyi_gnm(120, 500, &mut rng);
                let config = ParallelConfig::new(p).with_seed(seed);
                let reference = simulate_parallel(&g, 400, &config);

                let mut first = SimWorld::new(&g, 400, &config);
                // Run roughly half the steps, then snapshot and "die".
                let half = (first.steps() / 2).max(1);
                for _ in 0..half {
                    first.step();
                }
                let snap = first.snapshot();
                drop(first);

                let mut second = SimWorld::resume(&g, &config, &snap);
                while second.step().is_some() {}
                let resumed = second.finish();
                outcomes_logically_equal(&reference, &resumed);
            }
        }
    }

    #[test]
    fn snapshot_roundtrips_through_equality() {
        let mut rng = root_rng(303);
        let g = erdos_renyi_gnm(80, 300, &mut rng);
        let config = ParallelConfig::new(2).with_seed(5);
        let mut world = SimWorld::new(&g, 200, &config);
        world.step();
        let a = world.snapshot();
        let b = world.snapshot();
        assert_eq!(a, b, "snapshotting is read-only and deterministic");
    }

    #[test]
    #[should_panic(expected = "seed mismatch")]
    fn resume_rejects_wrong_seed() {
        let mut rng = root_rng(404);
        let g = erdos_renyi_gnm(60, 200, &mut rng);
        let config = ParallelConfig::new(2).with_seed(1);
        let world = SimWorld::new(&g, 100, &config);
        let snap = world.snapshot();
        let wrong = ParallelConfig::new(2).with_seed(2);
        let _ = SimWorld::resume(&g, &wrong, &snap);
    }
}
