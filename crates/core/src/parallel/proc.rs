//! The process-backed driver: ranks as OS child processes over
//! shared-memory rings, so `p` ranks genuinely occupy `p` cores.
//!
//! Structure mirrors the threaded driver (`super::engine`) exactly — the
//! same [`StepHarness`], the same [`run_rank_step`] event loop, the same
//! [`assemble_outcome`] merge — only the substrate differs:
//!
//! * the launcher serializes a **boot blob** into an [`ShmWorld`] and
//!   respawns the current binary once per rank with the mapping inherited
//!   by fd. The blob's payload is either the materialized per-rank edge
//!   pools as raw keys (O(m) boot bytes), or — under **seed boot**
//!   ([`try_parallel_edge_switch_proc_gen`]) — an O(1)
//!   [`StreamSpec`] that each child replays locally to regenerate
//!   exactly the edges it owns, so boot cost is constant in `m` and no
//!   participant ever holds more than its own share;
//! * each rank child attaches, rebuilds its [`RankState`] bit-identically
//!   (pool order is preserved, so edge sampling matches the threaded
//!   engine and the simulators), and runs the step loop over a
//!   [`ProcTransport`] — point-to-point `Msg` frames and the step-boundary
//!   collectives all travel the world's SPSC rings;
//! * at teardown each child streams a **result blob** (final store,
//!   tracker, [`RankStats`], comm stats, per-step telemetry) back to the
//!   launcher over its ring, and exits.
//!
//! Orphan safety is layered: children arm `PR_SET_PDEATHSIG(SIGKILL)`
//! before exec (re-checking `getppid` to close the pre-arm race), and the
//! world header carries a liveness word that parked ranks poll between
//! futex slices, so a rank can never outlive a dead launcher.
//!
//! Process runs are never observed (`RunReport` stays `None`): probes are
//! guaranteed non-perturbing, so conformance digests are unaffected.

use std::collections::VecDeque;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use edgeswitch_dist::BlockRng64;
use edgeswitch_graph::generators::StreamSpec;
use edgeswitch_graph::store::{build_rank_store_streamed, build_stores, PartitionStore};
use edgeswitch_graph::{Edge, Graph, Partitioner};
use edgeswitch_shm::{Endpoint, ShmWorld, WaitOutcome};
use mpilite::{CollCarrier, CommStats, COLLECTIVE_TAG_BASE, KIND_SLOTS};

use crate::config::ParallelConfig;
use crate::visit::VisitTracker;

use super::harness::{
    assemble_outcome, run_rank_step, MsgCounts, ParallelOutcome, RankOutput, RankTransport,
    StepHarness, StepScratch, StepTelemetry, Transport, TAG_PROTO,
};
use super::msg::{Msg, MsgKind};
use super::rank::{RankState, RankStats};
use super::wire;

const ENV_RANK: &str = "EDGESWITCH_SHM_RANK";
const ENV_FD: &str = "EDGESWITCH_SHM_FD";
const ENV_LEN: &str = "EDGESWITCH_SHM_LEN";
const ENV_PPID: &str = "EDGESWITCH_SHM_PPID";

/// Tag for result-blob frames (distinct from `TAG_PROTO`, below the
/// collective namespace).
const TAG_RESULT: u32 = 2;

/// Tags per collective invocation; mirrors `mpilite::collectives` so the
/// tag sequence is identical across backends.
const TAG_STRIDE: u32 = 4;

/// Per-receive deadlock timeout, matching `mpilite::WorldConfig`.
const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// Backpressure timeout for a full ring (peer presumed dead after this).
const SEND_TIMEOUT: Duration = Duration::from_secs(120);

// ---------------------------------------------------------------------
// Little-endian blob helpers
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn u8(&mut self) -> u8 {
        let v = self.bytes[self.at];
        self.at += 1;
        v
    }

    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.bytes[self.at..self.at + 4].try_into().unwrap());
        self.at += 4;
        v
    }

    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.bytes[self.at..self.at + 8].try_into().unwrap());
        self.at += 8;
        v
    }

    fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    fn done(&self) {
        assert_eq!(self.at, self.bytes.len(), "trailing bytes in blob");
    }
}

// ---------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------

/// [`RankTransport`] over a shared-memory world: the process-backend
/// sibling of [`super::harness::MpiliteTransport`].
///
/// Point-to-point sends encode one [`Msg`] per ring frame under
/// `TAG_PROTO`; the step-boundary collectives replicate
/// `mpilite::collectives` exactly (same direct-exchange order, same tag
/// sequence), with frames that arrive out of matching order buffered in
/// a pending queue — the ring grid only guarantees per-pair FIFO.
pub struct ProcTransport<'w> {
    ep: Endpoint<'w>,
    /// Ranks `p` (the world has `p + 1` participants; the launcher owns
    /// the extra endpoint).
    p: usize,
    stats: CommStats,
    coll_seq: u32,
    /// Frames received while waiting for something more specific:
    /// `(src, tag, payload)`.
    pending: VecDeque<(usize, u32, Vec<u8>)>,
    /// Logical messages unpacked from a `Msg::Batch` frame.
    inbox: VecDeque<(usize, Msg)>,
    spin_relax: u32,
    spin_total: u32,
    ebuf: Vec<u8>,
}

impl<'w> ProcTransport<'w> {
    /// Wrap a rank's endpoint (`ep.me()` must be the rank id, `< p`).
    pub fn new(ep: Endpoint<'w>, p: usize, spin_relax: u32, spin_total: u32) -> Self {
        assert!(ep.me() < p, "launcher endpoint is not a rank");
        ProcTransport {
            ep,
            p,
            stats: CommStats::default(),
            coll_seq: 0,
            pending: VecDeque::new(),
            inbox: VecDeque::new(),
            spin_relax,
            spin_total,
            ebuf: Vec::new(),
        }
    }

    /// Traffic counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    fn next_coll_tag(&mut self) -> u32 {
        let seq = self.coll_seq;
        self.coll_seq = self.coll_seq.wrapping_add(1);
        COLLECTIVE_TAG_BASE + (seq % ((u32::MAX - COLLECTIVE_TAG_BASE) / TAG_STRIDE)) * TAG_STRIDE
    }

    fn send_msg(&mut self, dst: usize, tag: u32, msg: &Msg) {
        self.stats.packets_sent += 1;
        self.stats.bytes_sent += msg.wire_size() as u64;
        msg.record_kinds(&mut self.stats.logical_by_kind);
        self.ebuf.clear();
        wire::encode_msg(msg, &mut self.ebuf);
        self.ep.send(dst, tag, &self.ebuf, SEND_TIMEOUT);
    }

    fn note_queue_depth(&mut self) {
        let depth = (self.pending.len() + self.inbox.len()) as u64;
        self.stats.recv_queue_peak = self.stats.recv_queue_peak.max(depth);
    }

    /// Unpack one protocol frame: batches queue their tail behind the
    /// first framed message; bare messages pass through.
    fn unpack(&mut self, src: usize, payload: Msg) -> (usize, Msg) {
        match payload {
            Msg::Batch(msgs) => {
                let mut it = msgs.into_iter();
                let first = it.next().expect("batch frames are never empty");
                for m in it {
                    self.inbox.push_back((src, m));
                }
                (src, first)
            }
            m => (src, m),
        }
    }

    /// Park until a frame arrives, metering park time; panics on world
    /// death or deadlock timeout.
    fn wait_for_traffic(&mut self) {
        match self.ep.wait(self.spin_relax, self.spin_total, RECV_TIMEOUT) {
            WaitOutcome::Ready => {}
            WaitOutcome::ParkedReady(ns) => {
                self.stats.parks += 1;
                self.stats.park_ns += ns;
            }
            WaitOutcome::Dead => panic!(
                "rank {}: shm world died while waiting for messages",
                self.ep.me()
            ),
            WaitOutcome::TimedOut => panic!(
                "rank {}: no message within {RECV_TIMEOUT:?} (protocol deadlock?)",
                self.ep.me()
            ),
        }
    }

    fn try_recv_proto(&mut self) -> Option<(usize, Msg)> {
        if let Some(x) = self.inbox.pop_front() {
            return Some(x);
        }
        self.note_queue_depth();
        if let Some(at) = self
            .pending
            .iter()
            .position(|(_, tag, _)| *tag == TAG_PROTO)
        {
            let (src, _, bytes) = self.pending.remove(at).expect("position is in range");
            self.stats.packets_received += 1;
            let msg = wire::decode_msg(&bytes);
            return Some(self.unpack(src, msg));
        }
        loop {
            let (src, tag, payload) = self.ep.try_recv()?;
            if tag == TAG_PROTO {
                let msg = wire::decode_msg(payload);
                self.stats.packets_received += 1;
                return Some(self.unpack(src, msg));
            }
            let owned = payload.to_vec();
            self.pending.push_back((src, tag, owned));
        }
    }

    /// Earliest-arrived frame from `src` under `tag` (collective
    /// matching), buffering everything else.
    fn recv_match(&mut self, src: usize, tag: u32) -> Vec<u8> {
        self.note_queue_depth();
        if let Some(at) = self
            .pending
            .iter()
            .position(|(s, t, _)| *s == src && *t == tag)
        {
            let (_, _, bytes) = self.pending.remove(at).expect("position is in range");
            self.stats.packets_received += 1;
            return bytes;
        }
        loop {
            match self.ep.try_recv() {
                Some((s, t, payload)) => {
                    let owned = payload.to_vec();
                    if s == src && t == tag {
                        self.stats.packets_received += 1;
                        return owned;
                    }
                    self.pending.push_back((s, t, owned));
                }
                None => self.wait_for_traffic(),
            }
        }
    }

    /// Direct-exchange allgather of one `u64`, mirroring
    /// `mpilite::Comm::allgather_u64` (same send/recv order, same tag
    /// draw, same stats accounting).
    // Rank indices double as slot indices and message routes, as in
    // `mpilite::collectives`; iterator rewrites would hide that.
    #[allow(clippy::needless_range_loop)]
    fn allgather_u64(&mut self, value: u64) -> Vec<u64> {
        let tag = self.next_coll_tag();
        let (rank, p) = (self.ep.me(), self.p);
        let mut out = vec![0u64; p];
        out[rank] = value;
        for dst in 0..p {
            if dst != rank {
                self.send_msg(dst, tag, &Msg::Coll(mpilite::CollPayload::U64(value)));
            }
        }
        for src in 0..p {
            if src != rank {
                let bytes = self.recv_match(src, tag);
                match wire::decode_msg(&bytes) {
                    Msg::Coll(mpilite::CollPayload::U64(v)) => out[src] = v,
                    other => panic!("allgather_u64 got {other:?}"),
                }
            }
        }
        self.stats.collectives += 1;
        out
    }

    /// Direct-exchange personalized all-to-all of one `u64` per peer,
    /// mirroring `mpilite::Comm::alltoall_u64`.
    #[allow(clippy::needless_range_loop)]
    fn alltoall_u64(&mut self, row: &[u64]) -> Vec<u64> {
        let (rank, p) = (self.ep.me(), self.p);
        assert_eq!(row.len(), p, "alltoall row must have one entry per rank");
        let tag = self.next_coll_tag();
        let mut out = vec![0u64; p];
        out[rank] = row[rank];
        for dst in 0..p {
            if dst != rank {
                self.send_msg(dst, tag, &Msg::Coll(mpilite::CollPayload::U64(row[dst])));
            }
        }
        for src in 0..p {
            if src != rank {
                let bytes = self.recv_match(src, tag);
                match wire::decode_msg(&bytes) {
                    Msg::Coll(mpilite::CollPayload::U64(v)) => out[src] = v,
                    other => panic!("alltoall_u64 got {other:?}"),
                }
            }
        }
        self.stats.collectives += 1;
        out
    }
}

impl Transport for ProcTransport<'_> {}

impl RankTransport for ProcTransport<'_> {
    fn rank(&self) -> usize {
        self.ep.me()
    }
    fn size(&self) -> usize {
        self.p
    }
    fn exchange_edge_counts(&mut self, count: u64) -> Vec<u64> {
        debug_assert!(self.inbox.is_empty(), "protocol traffic across step end");
        self.allgather_u64(count)
    }
    fn draw_quota(&mut self, step_ops: u64, q: &[f64], rng: &mut BlockRng64) -> u64 {
        // Identical RNG consumption to `parallel_multinomial_owned`.
        let local = edgeswitch_dist::local_quota_row(step_ops, self.p, self.ep.me(), q, rng);
        let mine = self.alltoall_u64(&local);
        mine.into_iter().sum()
    }
    fn send(&mut self, dst: usize, msg: Msg) {
        self.send_msg(dst, TAG_PROTO, &msg);
    }
    fn try_recv(&mut self) -> Option<(usize, Msg)> {
        self.try_recv_proto()
    }
    fn recv_block(&mut self) -> (usize, Msg) {
        loop {
            if let Some(x) = self.try_recv_proto() {
                return x;
            }
            self.wait_for_traffic();
        }
    }
}

// ---------------------------------------------------------------------
// Boot blob
// ---------------------------------------------------------------------

/// How a rank child obtains its initial edge pool.
enum BootPayload {
    /// The launcher materialized the graph and shipped every rank's pool:
    /// per-rank edge-pool lengths, with rank `r`'s keys following rank
    /// `r-1`'s in the concatenated key array. O(m) boot bytes.
    Keys { counts: Vec<u64>, keys: Vec<u64> },
    /// Seed boot: an O(1) [`StreamSpec`] — each child replays the
    /// generator stream and keeps the edges it owns
    /// ([`build_rank_store_streamed`]), so no edge list ever crosses the
    /// boot channel and no participant holds more than its own share.
    Gen { spec: StreamSpec },
}

struct BootBlob {
    config: ParallelConfig,
    part: Partitioner,
    t: u64,
    payload: BootPayload,
}

fn encode_config(out: &mut Vec<u8>, config: &ParallelConfig) {
    // Only fields the rank loop reads; per-invocation `proc_opts` and
    // observation are launcher-side (children always run unobserved —
    // probes never perturb, and process runs carry no `RunReport`).
    put_u64(out, config.processors as u64);
    out.push(match config.scheme {
        edgeswitch_graph::SchemeKind::Consecutive => 0,
        edgeswitch_graph::SchemeKind::HashDivision => 1,
        edgeswitch_graph::SchemeKind::HashMultiplication => 2,
        edgeswitch_graph::SchemeKind::HashUniversal => 3,
    });
    let (step_tag, step_arg) = match config.step_size {
        crate::config::StepSize::Ops(s) => (0u8, s),
        crate::config::StepSize::FractionOfT(d) => (1, d),
        crate::config::StepSize::SingleStep => (2, 0),
    };
    out.push(step_tag);
    put_u64(out, step_arg);
    out.push(match config.quota_policy {
        crate::config::QuotaPolicy::EdgeProportional => 0,
        crate::config::QuotaPolicy::Uniform => 1,
    });
    put_u64(out, config.seed);
    put_u64(out, config.window as u64);
    out.push(config.local_fastpath as u8);
    put_u64(out, config.spec_batch as u64);
    put_u32(out, config.spin_relax);
    put_u32(out, config.spin_total);
}

fn decode_config(r: &mut Reader<'_>) -> ParallelConfig {
    let processors = r.u64() as usize;
    let scheme = match r.u8() {
        0 => edgeswitch_graph::SchemeKind::Consecutive,
        1 => edgeswitch_graph::SchemeKind::HashDivision,
        2 => edgeswitch_graph::SchemeKind::HashMultiplication,
        3 => edgeswitch_graph::SchemeKind::HashUniversal,
        tag => panic!("unknown scheme tag {tag}"),
    };
    let step_size = match (r.u8(), r.u64()) {
        (0, s) => crate::config::StepSize::Ops(s),
        (1, d) => crate::config::StepSize::FractionOfT(d),
        (2, _) => crate::config::StepSize::SingleStep,
        (tag, _) => panic!("unknown step-size tag {tag}"),
    };
    let quota_policy = match r.u8() {
        0 => crate::config::QuotaPolicy::EdgeProportional,
        1 => crate::config::QuotaPolicy::Uniform,
        tag => panic!("unknown quota-policy tag {tag}"),
    };
    let mut config = ParallelConfig::new(processors)
        .with_scheme(scheme)
        .with_step_size(step_size)
        .with_quota_policy(quota_policy)
        .with_seed(r.u64());
    config = config.with_window(r.u64() as usize);
    config = config.with_local_fastpath(r.u8() != 0);
    config = config.with_spec_batch(r.u64() as usize);
    let (relax, total) = (r.u32(), r.u32());
    config.with_spin(relax, total)
}

fn encode_partitioner(out: &mut Vec<u8>, part: &Partitioner) {
    match part {
        Partitioner::Consecutive { starts } => {
            out.push(0);
            put_u64(out, starts.len() as u64);
            for s in starts {
                put_u64(out, *s);
            }
        }
        Partitioner::HashDivision { p } => {
            out.push(1);
            put_u32(out, *p);
        }
        Partitioner::HashMultiplication { p, a } => {
            out.push(2);
            put_u32(out, *p);
            put_u64(out, a.to_bits());
        }
        Partitioner::HashUniversal { p, a, b, c } => {
            out.push(3);
            put_u32(out, *p);
            put_u64(out, *a);
            put_u64(out, *b);
            put_u64(out, *c);
        }
    }
}

fn decode_partitioner(r: &mut Reader<'_>) -> Partitioner {
    match r.u8() {
        0 => {
            let len = r.u64() as usize;
            Partitioner::Consecutive {
                starts: (0..len).map(|_| r.u64()).collect(),
            }
        }
        1 => Partitioner::HashDivision { p: r.u32() },
        2 => Partitioner::HashMultiplication {
            p: r.u32(),
            a: f64::from_bits(r.u64()),
        },
        3 => Partitioner::HashUniversal {
            p: r.u32(),
            a: r.u64(),
            b: r.u64(),
            c: r.u64(),
        },
        tag => panic!("unknown partitioner tag {tag}"),
    }
}

fn encode_stream_spec(out: &mut Vec<u8>, spec: &StreamSpec) {
    match *spec {
        StreamSpec::Pa { n, d, seed } => {
            out.push(0);
            put_u64(out, n as u64);
            put_u64(out, d as u64);
            put_u64(out, seed);
        }
        StreamSpec::PowerLawSeq {
            n,
            gamma,
            d_min,
            d_max,
            seed,
        } => {
            out.push(1);
            put_u64(out, n as u64);
            put_u64(out, gamma.to_bits());
            put_u64(out, d_min as u64);
            put_u64(out, d_max as u64);
            put_u64(out, seed);
        }
    }
}

fn decode_stream_spec(r: &mut Reader<'_>) -> StreamSpec {
    match r.u8() {
        0 => StreamSpec::Pa {
            n: r.u64() as usize,
            d: r.u64() as usize,
            seed: r.u64(),
        },
        1 => StreamSpec::PowerLawSeq {
            n: r.u64() as usize,
            gamma: f64::from_bits(r.u64()),
            d_min: r.u64() as usize,
            d_max: r.u64() as usize,
            seed: r.u64(),
        },
        tag => panic!("unknown stream-spec tag {tag}"),
    }
}

/// Payload tags in the boot blob.
const BOOT_KEYS: u8 = 0;
const BOOT_GEN: u8 = 1;

fn encode_boot_header(config: &ParallelConfig, part: &Partitioner, n: usize, t: u64) -> Vec<u8> {
    let mut out = Vec::new();
    encode_config(&mut out, config);
    encode_partitioner(&mut out, part);
    put_u64(&mut out, n as u64);
    put_u64(&mut out, t);
    out
}

fn encode_boot(
    config: &ParallelConfig,
    part: &Partitioner,
    n: usize,
    t: u64,
    stores: &[PartitionStore],
) -> Vec<u8> {
    let mut out = encode_boot_header(config, part, n, t);
    out.push(BOOT_KEYS);
    put_u64(&mut out, stores.len() as u64);
    for store in stores {
        put_u64(&mut out, store.num_edges() as u64);
    }
    for store in stores {
        // Pool order: edge sampling order. Raw keys keep the blob
        // byte-exact across processes.
        for e in store.edges() {
            put_u64(&mut out, e.key());
        }
    }
    out
}

fn encode_boot_gen(
    config: &ParallelConfig,
    part: &Partitioner,
    t: u64,
    spec: &StreamSpec,
) -> Vec<u8> {
    let mut out = encode_boot_header(config, part, spec.num_vertices(), t);
    out.push(BOOT_GEN);
    encode_stream_spec(&mut out, spec);
    out
}

fn decode_boot(bytes: &[u8]) -> BootBlob {
    let mut r = Reader::new(bytes);
    let config = decode_config(&mut r);
    let part = decode_partitioner(&mut r);
    let _n = r.u64(); // vertex count: launcher-side (assemble_outcome)
    let t = r.u64();
    let payload = match r.u8() {
        BOOT_KEYS => {
            let p = r.u64() as usize;
            let counts: Vec<u64> = (0..p).map(|_| r.u64()).collect();
            let total: u64 = counts.iter().sum();
            let keys: Vec<u64> = (0..total).map(|_| r.u64()).collect();
            BootPayload::Keys { counts, keys }
        }
        BOOT_GEN => BootPayload::Gen {
            spec: decode_stream_spec(&mut r),
        },
        tag => panic!("unknown boot-payload tag {tag}"),
    };
    r.done();
    BootBlob {
        config,
        part,
        t,
        payload,
    }
}

// ---------------------------------------------------------------------
// Result blob
// ---------------------------------------------------------------------

fn encode_result(
    rank: usize,
    initial_edges: u64,
    store: &PartitionStore,
    tracker: &VisitTracker,
    stats: &RankStats,
    comm: &CommStats,
    telemetry: &[StepTelemetry],
) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, rank as u64);
    // Pre-switch pool size: under seed boot the launcher never sees the
    // initial stores, so ranks report their own share for
    // `assemble_outcome`'s load-balance accounting.
    put_u64(&mut out, initial_edges);

    put_u64(&mut out, store.num_edges() as u64);
    for e in store.edges() {
        put_u64(&mut out, e.key());
    }

    put_u64(&mut out, tracker.initial_count() as u64);
    let remaining: Vec<u64> = tracker.remaining_keys().collect();
    put_u64(&mut out, remaining.len() as u64);
    for key in remaining {
        put_u64(&mut out, key);
    }

    for v in [
        stats.performed,
        stats.performed_local,
        stats.performed_global,
        stats.performed_fastpath,
        stats.aborts_loop,
        stats.aborts_useless,
        stats.aborts_parallel,
        stats.aborts_contended,
        stats.forfeited,
        stats.proposals_served,
        stats.validations_served,
        stats.spec_committed,
        stats.spec_rolled_back,
    ] {
        put_u64(&mut out, v);
    }

    for v in [
        comm.packets_sent,
        comm.bytes_sent,
        comm.packets_received,
        comm.collectives,
        comm.parks,
        comm.park_ns,
        comm.recv_queue_peak,
        comm.recv_buf_reuses,
    ] {
        put_u64(&mut out, v);
    }
    for v in comm.logical_by_kind {
        put_u64(&mut out, v);
    }

    put_u64(&mut out, telemetry.len() as u64);
    for tel in telemetry {
        for v in [
            tel.ops,
            tel.started,
            tel.performed,
            tel.local_fastpath,
            tel.forfeited,
            tel.served,
            tel.blocked,
            tel.parked,
            tel.window_peak,
            tel.spec_committed,
            tel.spec_rolled_back,
            tel.packets,
            tel.trades,
            tel.neighbors_moved,
        ] {
            put_u64(&mut out, v);
        }
        for v in tel.logical_msgs.slots() {
            put_u64(&mut out, *v);
        }
        for v in [
            tel.boundary_ns,
            tel.drain_ns,
            tel.barrier_ns,
            tel.qrefresh_ns,
            tel.wait_ns,
        ] {
            put_u64(&mut out, v.to_bits());
        }
    }
    out
}

fn decode_result(bytes: &[u8]) -> (usize, u64, RankOutput, Vec<StepTelemetry>) {
    let mut r = Reader::new(bytes);
    let rank = r.u64() as usize;
    let initial_edges = r.u64();

    let edge_count = r.u64() as usize;
    let mut store = PartitionStore::new(rank);
    for _ in 0..edge_count {
        let inserted = store.insert(Edge::from_key(r.u64()));
        debug_assert!(inserted, "result store has duplicate edges");
    }

    let initial_count = r.u64() as usize;
    let remaining_len = r.u64() as usize;
    let tracker = VisitTracker::from_parts(initial_count, (0..remaining_len).map(|_| r.u64()));

    let stats = RankStats {
        performed: r.u64(),
        performed_local: r.u64(),
        performed_global: r.u64(),
        performed_fastpath: r.u64(),
        aborts_loop: r.u64(),
        aborts_useless: r.u64(),
        aborts_parallel: r.u64(),
        aborts_contended: r.u64(),
        forfeited: r.u64(),
        proposals_served: r.u64(),
        validations_served: r.u64(),
        spec_committed: r.u64(),
        spec_rolled_back: r.u64(),
    };

    let mut comm = CommStats {
        packets_sent: r.u64(),
        bytes_sent: r.u64(),
        packets_received: r.u64(),
        collectives: r.u64(),
        parks: r.u64(),
        park_ns: r.u64(),
        recv_queue_peak: r.u64(),
        recv_buf_reuses: r.u64(),
        ..CommStats::default()
    };
    for slot in 0..KIND_SLOTS {
        comm.logical_by_kind[slot] = r.u64();
    }

    let steps = r.u64() as usize;
    let telemetry: Vec<StepTelemetry> = (0..steps)
        .map(|_| {
            let mut tel = StepTelemetry {
                ops: r.u64(),
                started: r.u64(),
                performed: r.u64(),
                local_fastpath: r.u64(),
                forfeited: r.u64(),
                served: r.u64(),
                blocked: r.u64(),
                parked: r.u64(),
                window_peak: r.u64(),
                spec_committed: r.u64(),
                spec_rolled_back: r.u64(),
                packets: r.u64(),
                trades: r.u64(),
                neighbors_moved: r.u64(),
                ..StepTelemetry::default()
            };
            let mut slots = [0u64; MsgKind::COUNT];
            for slot in &mut slots {
                *slot = r.u64();
            }
            tel.logical_msgs = MsgCounts::from_slots(slots);
            tel.boundary_ns = r.f64();
            tel.drain_ns = r.f64();
            tel.barrier_ns = r.f64();
            tel.qrefresh_ns = r.f64();
            tel.wait_ns = r.f64();
            tel
        })
        .collect();
    r.done();

    let output = RankOutput {
        store,
        tracker,
        stats,
        comm,
        obs: None,
    };
    (rank, initial_edges, output, telemetry)
}

// ---------------------------------------------------------------------
// Result streaming (chunked over the child → launcher ring)
// ---------------------------------------------------------------------

fn result_chunk_len(world: &ShmWorld) -> usize {
    (world.ring_capacity() / 2).clamp(1024, 16 * 1024)
}

fn send_result(ep: &Endpoint<'_>, launcher: usize, blob: &[u8], chunk: usize) {
    let mut header = Vec::with_capacity(8);
    put_u64(&mut header, blob.len() as u64);
    ep.send(launcher, TAG_RESULT, &header, SEND_TIMEOUT);
    for piece in blob.chunks(chunk.max(1)) {
        ep.send(launcher, TAG_RESULT, piece, SEND_TIMEOUT);
    }
}

/// Launcher side: drain `TAG_RESULT` frames from all `p` rank children
/// until every blob is complete, reporting a [`ProcError::RankDied`] if a
/// child dies first.
fn collect_results(
    ep: &mut Endpoint<'_>,
    p: usize,
    children: &mut [Child],
) -> Result<Vec<Vec<u8>>, ProcError> {
    let mut want: Vec<Option<usize>> = vec![None; p];
    let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); p];
    let mut done = 0usize;
    while done < p {
        if let Some((src, tag, payload)) = ep.try_recv() {
            assert_eq!(
                tag, TAG_RESULT,
                "unexpected tag {tag} from rank {src} at teardown"
            );
            assert!(src < p);
            match want[src] {
                None => {
                    assert_eq!(payload.len(), 8, "result header frame");
                    let total = u64::from_le_bytes(payload.try_into().unwrap()) as usize;
                    want[src] = Some(total);
                    bufs[src].reserve(total);
                    if total == 0 {
                        done += 1;
                    }
                }
                Some(total) => {
                    assert!(
                        bufs[src].len() < total,
                        "rank {src} sent extra result bytes"
                    );
                    bufs[src].extend_from_slice(payload);
                    if bufs[src].len() == total {
                        done += 1;
                    }
                }
            }
            continue;
        }
        match ep.wait(64, 256, Duration::from_millis(100)) {
            WaitOutcome::Ready | WaitOutcome::ParkedReady(_) | WaitOutcome::TimedOut => {}
            WaitOutcome::Dead => unreachable!("launcher owns the liveness word"),
        }
        // A rank that died before completing its blob would hang us
        // forever: check child status whenever the rings run dry.
        for (rank, child) in children.iter_mut().enumerate() {
            let complete = want[rank].is_some_and(|total| bufs[rank].len() == total);
            if complete {
                continue;
            }
            if let Ok(Some(status)) = child.try_wait() {
                if !status.success() {
                    return Err(ProcError::RankDied {
                        rank,
                        detail: format!("exited with {status} before returning results"),
                    });
                }
                // Exited cleanly: its frames are still in the ring; keep
                // draining (the next loop iterations will consume them).
            }
        }
    }
    Ok(bufs)
}

/// Best-effort teardown of rank children on an error path: kill whatever
/// is still running, then reap everything so no zombie outlives the
/// failed launch.
fn kill_children(children: &mut [Child]) {
    for child in children.iter_mut() {
        let _ = child.kill();
    }
    for child in children.iter_mut() {
        let _ = child.wait();
    }
}

// ---------------------------------------------------------------------
// Launcher
// ---------------------------------------------------------------------

/// Why a process-backed launch failed. Each variant maps onto the
/// corresponding [`RunError`](crate::run::RunError) variant at the `Run`
/// API boundary; the free functions keep their panicking contract by
/// unwrapping these with the same messages as before.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProcError {
    /// Shared-memory worlds are unavailable on this platform (the
    /// process backend needs Linux).
    Unsupported(String),
    /// A rank child could not be spawned.
    Spawn {
        /// The rank whose spawn failed.
        rank: usize,
        /// The OS error.
        detail: String,
    },
    /// A rank child died, exited abnormally, or returned no result.
    RankDied {
        /// The rank that died.
        rank: usize,
        /// What happened to it.
        detail: String,
    },
}

impl std::fmt::Display for ProcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcError::Unsupported(detail) => {
                write!(
                    f,
                    "process backend needs shared-memory support (Linux): {detail}"
                )
            }
            ProcError::Spawn { rank, detail } => write!(f, "spawning shm rank {rank}: {detail}"),
            ProcError::RankDied { rank, detail } => write!(f, "shm rank {rank}: {detail}"),
        }
    }
}

impl std::error::Error for ProcError {}

/// Run `t` switch operations on `graph` under `config` with rank
/// processes over shared memory. Mirrors
/// [`super::engine::parallel_edge_switch_with`]; bit-identical outcomes
/// at `p = 1` and schedule-equivalent outcomes at `p > 1`.
///
/// # Panics
/// Panics when shared-memory worlds are unsupported on this platform
/// (non-Linux), when a rank child cannot be spawned, or when a child
/// dies mid-run. [`try_parallel_edge_switch_proc`] is the fallible form
/// behind [`Run::try_execute`](crate::run::Run::try_execute).
pub fn parallel_edge_switch_proc(
    graph: &Graph,
    t: u64,
    config: &ParallelConfig,
    part: &Partitioner,
) -> ParallelOutcome {
    try_parallel_edge_switch_proc(graph, t, config, part).unwrap_or_else(|err| panic!("{err}"))
}

/// Fallible form of [`parallel_edge_switch_proc`]: launch failures come
/// back as [`ProcError`] instead of panicking, with every already-spawned
/// child killed and reaped on the error path.
pub fn try_parallel_edge_switch_proc(
    graph: &Graph,
    t: u64,
    config: &ParallelConfig,
    part: &Partitioner,
) -> Result<ParallelOutcome, ProcError> {
    let p = config.processors;
    assert_eq!(part.num_parts(), p, "partitioner size must match config");
    let stores = build_stores(graph, part);
    let n = graph.num_vertices();
    let boot = encode_boot(config, part, n, t, &stores);
    drop(stores);
    launch_world(boot, n, t, config)
}

/// Seed-boot launcher: run `t` switch operations on the graph *described*
/// by `spec` without ever materializing it on the launcher. The boot blob
/// carries the O(1) spec instead of the O(m) edge list; each rank child
/// replays the generator stream and keeps its own share
/// ([`build_rank_store_streamed`]), so peak residency per participant is
/// O(m/p) and boot-channel traffic is constant in `m`.
///
/// Semantically identical to materializing `spec.build()` and calling
/// [`parallel_edge_switch_proc`] — the per-rank pool order is the same
/// (streamed split ≡ `build_stores`; see `edgeswitch_graph::store`) — so
/// outcomes match the materialized launch bit for bit.
///
/// # Panics
/// Panics when `spec.validate()` rejects the parameters or the
/// partitioner size disagrees with `config.processors`.
pub fn try_parallel_edge_switch_proc_gen(
    spec: &StreamSpec,
    t: u64,
    config: &ParallelConfig,
    part: &Partitioner,
) -> Result<ParallelOutcome, ProcError> {
    assert_eq!(
        part.num_parts(),
        config.processors,
        "partitioner size must match config"
    );
    if let Err(detail) = spec.validate() {
        panic!("seed-boot spec rejected: {detail}");
    }
    let boot = encode_boot_gen(config, part, t, spec);
    launch_world(boot, spec.num_vertices(), t, config)
}

/// Panicking form of [`try_parallel_edge_switch_proc_gen`], for parity
/// with [`parallel_edge_switch_proc`].
pub fn parallel_edge_switch_proc_gen(
    spec: &StreamSpec,
    t: u64,
    config: &ParallelConfig,
    part: &Partitioner,
) -> ParallelOutcome {
    try_parallel_edge_switch_proc_gen(spec, t, config, part).unwrap_or_else(|err| panic!("{err}"))
}

/// Shared launch machinery: write `boot` into a fresh shm world, respawn
/// one child per rank, collect result blobs, and assemble the outcome.
/// Initial per-rank edge counts come back in the result blobs (the
/// seed-boot launcher has no other way to learn them).
fn launch_world(
    boot: Vec<u8>,
    n: usize,
    t: u64,
    config: &ParallelConfig,
) -> Result<ParallelOutcome, ProcError> {
    let p = config.processors;
    let harness = StepHarness::new(t, config);
    let steps = harness.steps();

    // k = p ranks + 1 launcher endpoint (index p) for result return.
    let world = ShmWorld::create(p + 1, config.proc_opts.ring_capacity, boot.len())
        .map_err(|err| ProcError::Unsupported(err.to_string()))?;
    world.write_boot(&boot);

    let exe = match &config.proc_opts.exe_override {
        Some(path) => path.clone(),
        None => std::env::current_exe().map_err(|err| ProcError::Spawn {
            rank: 0,
            detail: format!("current_exe for rank respawn: {err}"),
        })?,
    };
    let mut children: Vec<Child> = Vec::with_capacity(p);
    for rank in 0..p {
        let mut cmd = Command::new(&exe);
        cmd.args(&config.proc_opts.child_args)
            .env(ENV_RANK, rank.to_string())
            .env(ENV_FD, world.fd().to_string())
            .env(ENV_LEN, world.len().to_string())
            .env(ENV_PPID, std::process::id().to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null());
        #[cfg(unix)]
        {
            use std::os::unix::process::CommandExt;
            // Arm the parent-death signal before exec; the child re-checks
            // its ppid to close the fork-to-arm race.
            unsafe {
                cmd.pre_exec(|| {
                    edgeswitch_shm::die_with_parent();
                    Ok(())
                });
            }
        }
        let child = match cmd.spawn() {
            Ok(child) => child,
            Err(err) => {
                kill_children(&mut children);
                return Err(ProcError::Spawn {
                    rank,
                    detail: err.to_string(),
                });
            }
        };
        if config.proc_opts.announce_children {
            println!("shm-child-pid: {}", child.id());
        }
        children.push(child);
    }

    let mut ep = world.endpoint(p);
    let blobs = match collect_results(&mut ep, p, &mut children) {
        Ok(blobs) => blobs,
        Err(err) => {
            kill_children(&mut children);
            return Err(err);
        }
    };
    for (rank, child) in children.iter_mut().enumerate() {
        let status = child.wait().expect("reaping shm rank child");
        if !status.success() {
            kill_children(&mut children);
            return Err(ProcError::RankDied {
                rank,
                detail: format!("exited with {status}"),
            });
        }
    }

    let mut outputs: Vec<Option<RankOutput>> = (0..p).map(|_| None).collect();
    let mut initial_edges = vec![0u64; p];
    let mut telemetry = vec![StepTelemetry::default(); steps as usize];
    for blob in &blobs {
        let (rank, initial, output, rank_telemetry) = decode_result(blob);
        for (acc, step) in telemetry.iter_mut().zip(&rank_telemetry) {
            acc.merge(step);
        }
        initial_edges[rank] = initial;
        assert!(
            outputs[rank].replace(output).is_none(),
            "duplicate result for rank {rank}"
        );
    }
    let mut outputs_final: Vec<RankOutput> = Vec::with_capacity(p);
    for (rank, o) in outputs.into_iter().enumerate() {
        match o {
            Some(output) => outputs_final.push(output),
            None => {
                return Err(ProcError::RankDied {
                    rank,
                    detail: "no result returned".to_string(),
                })
            }
        }
    }

    // Process runs are unobserved: meta stays None, report stays None.
    Ok(assemble_outcome(
        n,
        steps,
        initial_edges,
        outputs_final,
        telemetry,
        None,
    ))
}

// ---------------------------------------------------------------------
// Rank child
// ---------------------------------------------------------------------

/// Whether this platform can run the process backend (Linux with
/// shared-memory worlds). [`parallel_edge_switch_proc`] panics where this
/// returns `false`; benches and tests use it to skip process cases.
pub fn process_backend_supported() -> bool {
    edgeswitch_shm::SUPPORTED
}

/// Re-entry hook for rank children: a no-op unless the shm environment
/// variables are present, in which case it attaches to the inherited
/// world, runs the full rank loop, streams its results back, and
/// **exits the process** (never returns).
///
/// Every binary that launches process-backed runs must route its rank
/// children here: binaries call it at the top of `main`; libtest
/// binaries expose it through an `#[ignore]`d test named
/// `shm_child_entry` (the default `ProcOpts::child_args` select exactly
/// that test in the respawned child).
pub fn child_entry_from_env() {
    let Ok(rank) = std::env::var(ENV_RANK) else {
        return;
    };
    let rank: usize = rank.parse().expect("EDGESWITCH_SHM_RANK parses");
    let fd: i32 = std::env::var(ENV_FD)
        .expect(ENV_FD)
        .parse()
        .expect("fd parses");
    let len: usize = std::env::var(ENV_LEN)
        .expect(ENV_LEN)
        .parse()
        .expect("len parses");
    let ppid: u32 = std::env::var(ENV_PPID)
        .expect(ENV_PPID)
        .parse()
        .expect("ppid parses");

    // Defense in depth: re-arm the death signal (pre_exec already did on
    // Unix), then verify the parent is still the process that spawned us —
    // if it died before the signal was armed, exit instead of orphaning.
    edgeswitch_shm::die_with_parent();
    if edgeswitch_shm::parent_pid() != ppid {
        std::process::exit(2);
    }

    let world = ShmWorld::open(fd, len).expect("attaching inherited shm world");
    run_rank_child(&world, rank);
    std::process::exit(0);
}

fn run_rank_child(world: &ShmWorld, rank: usize) {
    let BootBlob {
        config,
        part,
        t,
        payload,
    } = decode_boot(world.boot());
    let p = config.processors;
    assert_eq!(world.participants(), p + 1);
    assert!(rank < p);

    let store = match payload {
        BootPayload::Keys { counts, keys } => {
            // Rebuild this rank's store with the exact pool order the
            // launcher serialized (insertion order == pool order ==
            // sampling order).
            let offset: u64 = counts[..rank].iter().sum();
            let mut store = PartitionStore::new(rank);
            for key in &keys[offset as usize..(offset + counts[rank]) as usize] {
                let inserted = store.insert(Edge::from_key(*key));
                debug_assert!(inserted, "boot store has duplicate edges");
            }
            store
        }
        BootPayload::Gen { spec } => {
            // Seed boot: replay the generator stream, keep owned edges.
            // The streamed split preserves emission order, so the pool
            // order equals what a materialized boot would have shipped.
            let mut stream = spec
                .stream()
                .expect("seed-boot spec validated at the launcher");
            build_rank_store_streamed(&mut *stream, &part, rank)
        }
    };
    let initial_edges = store.num_edges() as u64;

    let harness = StepHarness::new(t, &config);
    let steps = harness.steps();
    let mut state = RankState::new(rank, part, store, config.seed, config.window)
        .with_fastpath(config.local_fastpath)
        .with_spec_batch(config.spec_batch);

    let mut transport = ProcTransport::new(
        world.endpoint(rank),
        p,
        config.spin_relax,
        config.spin_total,
    );
    let mut scratch = StepScratch::new(p);
    let telemetry: Vec<StepTelemetry> = (0..steps)
        .map(|step| {
            run_rank_step(
                &mut transport,
                &mut state,
                &mut scratch,
                harness.step_ops(step),
                harness.uniform_q(),
            )
        })
        .collect();

    let comm_stats = transport.stats();
    let ProcTransport { ep, .. } = transport;
    let (store, tracker, stats, _obs) = state.into_parts();
    let blob = encode_result(
        rank,
        initial_edges,
        &store,
        &tracker,
        &stats,
        &comm_stats,
        &telemetry,
    );
    send_result(&ep, p, &blob, result_chunk_len(world));
}
