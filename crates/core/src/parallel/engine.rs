//! The threaded driver: runs the distributed protocol over real
//! message-passing ranks (`mpilite`), one thread per processor.
//!
//! Step structure (Section 4.5):
//! 1. allgather `|E_i|` and rebuild the probability vector `q`;
//! 2. distribute the step's `s` operations by the parallel multinomial
//!    algorithm (owned layout, Algorithm 5);
//! 3. every rank performs its quota while serving others, then signals
//!    `EndOfStep` and keeps serving until all signals arrive.

use super::msg::{Msg, Outbox};
use super::rank::{RankState, RankStats, StartResult};
use crate::config::{ParallelConfig, QuotaPolicy};
use crate::visit::VisitTracker;
use edgeswitch_dist::parallel::parallel_multinomial_owned;
use edgeswitch_graph::store::{assemble_graph, build_stores};
use edgeswitch_graph::{Graph, PartitionStore, Partitioner};
use mpilite::{run_world, Comm, CommStats, WorldConfig};
use parking_lot::Mutex;

/// Tag for protocol messages (collectives use the reserved namespace).
const TAG_PROTO: u32 = 1;

/// Result of a parallel run.
#[derive(Debug)]
pub struct ParallelOutcome {
    /// The switched graph, reassembled from all partitions.
    pub graph: Graph,
    /// Steps executed.
    pub steps: u64,
    /// Per-rank protocol statistics (workload distribution etc.).
    pub per_rank: Vec<RankStats>,
    /// Final `|E_i|` per rank (Figure 18).
    pub final_edges: Vec<u64>,
    /// Initial `|E_i|` per rank (Figure 17).
    pub initial_edges: Vec<u64>,
    /// Per-rank communication counters.
    pub comm: Vec<CommStats>,
    /// Merged visit tracking over the whole graph.
    pub tracker: VisitTracker,
}

impl ParallelOutcome {
    /// Observed visit rate.
    pub fn visit_rate(&self) -> f64 {
        self.tracker.visit_rate()
    }

    /// Total operations performed across ranks.
    pub fn performed(&self) -> u64 {
        self.per_rank.iter().map(|s| s.performed).sum()
    }

    /// Total operations forfeited (degenerate graphs only).
    pub fn forfeited(&self) -> u64 {
        self.per_rank.iter().map(|s| s.forfeited).sum()
    }

    /// Workload per rank: operations performed as initiator
    /// (Figures 19–21).
    pub fn workload(&self) -> Vec<u64> {
        self.per_rank.iter().map(|s| s.performed).collect()
    }
}

/// Run `t` switch operations on `graph` under `config`, using the
/// partitioner built for the configured scheme.
pub fn parallel_edge_switch(graph: &Graph, t: u64, config: &ParallelConfig) -> ParallelOutcome {
    let mut rng = edgeswitch_dist::root_rng(config.seed ^ 0x9a17);
    let part = Partitioner::build(config.scheme, graph, config.processors, &mut rng);
    parallel_edge_switch_with(graph, t, config, &part)
}

/// [`parallel_edge_switch`] with an explicit partitioner (for adversarial
/// or custom partitioning experiments).
pub fn parallel_edge_switch_with(
    graph: &Graph,
    t: u64,
    config: &ParallelConfig,
    part: &Partitioner,
) -> ParallelOutcome {
    let p = config.processors;
    assert_eq!(part.num_parts(), p, "partitioner size must match config");
    let stores = build_stores(graph, part);
    let initial_edges: Vec<u64> = stores.iter().map(|s| s.num_edges() as u64).collect();
    let n = graph.num_vertices();

    let s = config.step_size.resolve(t);
    let steps = t.div_ceil(s.max(1));

    // Hand one store to each rank thread.
    let slots: Vec<Mutex<Option<PartitionStore>>> =
        stores.into_iter().map(|st| Mutex::new(Some(st))).collect();

    let seed = config.seed;
    let part_ref = &part;
    let slots_ref = &slots;

    let results: Vec<(PartitionStore, VisitTracker, RankStats, CommStats)> = run_world(
        p,
        WorldConfig::default(),
        move |comm: &mut Comm<Msg>| {
            let store = slots_ref[comm.rank()]
                .lock()
                .take()
                .expect("store taken once per rank");
            let mut state = RankState::new(comm.rank(), (*part_ref).clone(), store, seed);
            let uniform_q = config.quota_policy == QuotaPolicy::Uniform;
            for step in 0..steps {
                let quota_total = if step == steps - 1 { t - s * (steps - 1) } else { s };
                run_one_step(comm, &mut state, quota_total, uniform_q);
            }
            let stats = comm.stats();
            let (store, tracker, rank_stats) = state.into_parts();
            (store, tracker, rank_stats, stats)
        },
    );

    let mut per_rank = Vec::with_capacity(p);
    let mut comm_stats = Vec::with_capacity(p);
    let mut final_edges = Vec::with_capacity(p);
    let mut tracker_acc: Option<VisitTracker> = None;
    let mut final_stores = Vec::with_capacity(p);
    for (store, tracker, rank_stats, cstats) in results {
        per_rank.push(rank_stats);
        comm_stats.push(cstats);
        final_edges.push(store.num_edges() as u64);
        final_stores.push(store);
        match &mut tracker_acc {
            None => tracker_acc = Some(tracker),
            Some(acc) => acc.merge_disjoint(tracker),
        }
    }
    let graph = assemble_graph(n, &final_stores);
    ParallelOutcome {
        graph,
        steps,
        per_rank,
        final_edges,
        initial_edges,
        comm: comm_stats,
        tracker: tracker_acc.unwrap_or_else(|| VisitTracker::new(std::iter::empty())),
    }
}

/// One step: refresh `q`, draw quotas, switch until everyone signals.
fn run_one_step(comm: &mut Comm<Msg>, state: &mut RankState, step_ops: u64, uniform_q: bool) {
    let p = comm.size();
    // (1) Probability vector from current edge counts.
    let counts = comm.allgather_u64(state.edge_count());
    let total: u64 = counts.iter().sum();
    let q: Vec<f64> = if total == 0 || uniform_q {
        vec![1.0 / p as f64; p]
    } else {
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    };
    // (2) Multinomial distribution of the step's operations (Alg. 5).
    let quota = parallel_multinomial_owned(comm, step_ops, &q, state.rng_mut());
    state.begin_step(quota, &q);

    // (3) Event loop.
    let mut outbox = Outbox::new();
    let mut eos = 0usize;
    let mut signaled = false;
    loop {
        // Drain everything already delivered.
        while let Some(pkt) = comm.try_recv_tag(TAG_PROTO) {
            dispatch(comm, state, pkt.src, pkt.payload, &mut outbox, &mut eos);
        }
        if !signaled && state.step_done() {
            for dst in 0..p {
                if dst != comm.rank() {
                    comm.send(dst, TAG_PROTO, Msg::EndOfStep);
                }
            }
            eos += 1; // count self
            signaled = true;
        }
        if signaled {
            if eos == p {
                break;
            }
            // Nothing of our own left: block for the next message.
            let pkt = comm.recv_tag(TAG_PROTO);
            dispatch(comm, state, pkt.src, pkt.payload, &mut outbox, &mut eos);
            continue;
        }
        match state.try_start(&mut outbox) {
            StartResult::Started => {
                flush(comm, state, &mut outbox, &mut eos);
            }
            StartResult::Idle | StartResult::Blocked => {
                if state.step_done() {
                    continue; // signal on next iteration
                }
                // Waiting on a response or on contended edges: block.
                let pkt = comm.recv_tag(TAG_PROTO);
                dispatch(comm, state, pkt.src, pkt.payload, &mut outbox, &mut eos);
            }
        }
    }
    debug_assert!(state.step_done());
}

/// Handle one incoming message and route whatever it generated.
fn dispatch(
    comm: &mut Comm<Msg>,
    state: &mut RankState,
    src: usize,
    msg: Msg,
    outbox: &mut Outbox,
    eos: &mut usize,
) {
    match msg {
        Msg::EndOfStep => *eos += 1,
        Msg::Coll(_) => unreachable!("tag-filtered receive cannot yield collective traffic"),
        m => {
            state.handle(src, m, outbox);
            flush(comm, state, outbox, eos);
        }
    }
}

/// Deliver queued messages: self-addressed ones re-enter the state
/// machine immediately; the rest go over the wire.
fn flush(comm: &mut Comm<Msg>, state: &mut RankState, outbox: &mut Outbox, _eos: &mut usize) {
    while let Some((dst, msg)) = outbox.pop() {
        if dst == comm.rank() {
            state.handle(dst, msg, outbox);
        } else {
            comm.send(dst, TAG_PROTO, msg);
        }
    }
}
