//! The threaded driver: runs the distributed protocol over real
//! message-passing ranks (`mpilite`), one thread per processor.
//!
//! All step machinery lives in [`super::harness`]; this driver only
//! binds it to real threads: each rank wraps its [`Comm`] endpoint in a
//! [`MpiliteTransport`] and runs [`run_rank_step`] for every step of the
//! [`StepHarness`], then the per-rank results and telemetry are merged
//! into one [`ParallelOutcome`].

use super::harness::{
    assemble_outcome, run_rank_step, MpiliteTransport, RankOutput, RunMeta, StepHarness,
    StepScratch, StepTelemetry,
};
use super::msg::Msg;
use super::rank::RankState;
use crate::obs::{Clock, MonoClock};
use edgeswitch_graph::store::build_stores;
use edgeswitch_graph::{Graph, PartitionStore, Partitioner};
use mpilite::{run_world, Comm, WorldConfig};
use parking_lot::Mutex;
use std::sync::Arc;

pub use super::harness::ParallelOutcome;

use crate::config::{Backend, ParallelConfig};

/// Run `t` switch operations on `graph` under `config`, using the
/// partitioner built for the configured scheme.
pub fn parallel_edge_switch(graph: &Graph, t: u64, config: &ParallelConfig) -> ParallelOutcome {
    let mut rng = config.root_rng();
    let part = Partitioner::build(config.scheme, graph, config.processors, &mut rng);
    parallel_edge_switch_with(graph, t, config, &part)
}

/// [`parallel_edge_switch`] with an explicit partitioner (for adversarial
/// or custom partitioning experiments).
pub fn parallel_edge_switch_with(
    graph: &Graph,
    t: u64,
    config: &ParallelConfig,
    part: &Partitioner,
) -> ParallelOutcome {
    if config.backend == Backend::Process {
        return super::proc::parallel_edge_switch_proc(graph, t, config, part);
    }
    let p = config.processors;
    assert_eq!(part.num_parts(), p, "partitioner size must match config");
    let stores = build_stores(graph, part);
    let initial_edges: Vec<u64> = stores.iter().map(|s| s.num_edges() as u64).collect();
    let n = graph.num_vertices();

    let harness = StepHarness::new(t, config);
    let steps = harness.steps();

    // Hand one store to each rank thread.
    let slots: Vec<Mutex<Option<PartitionStore>>> =
        stores.into_iter().map(|st| Mutex::new(Some(st))).collect();

    let seed = config.seed;
    let window = config.window;
    let local_fastpath = config.local_fastpath;
    let spec_batch = config.spec_batch;
    let part_ref = &part;
    let slots_ref = &slots;

    // One shared monotonic clock so every rank's spans live on the same
    // timeline. `None` when unobserved: probes stay no-ops.
    let clock: Option<Arc<dyn Clock>> = if config.obs.enabled() {
        Some(Arc::new(MonoClock::new()))
    } else {
        None
    };
    let obs_spec = config.obs;
    let clock_ref = &clock;
    let run_start = clock.as_ref().map_or(0, |c| c.now_ns());

    let world_config = WorldConfig {
        spin_relax: config.spin_relax,
        spin_total: config.spin_total,
        ..WorldConfig::default()
    };
    let results: Vec<(RankOutput, Vec<StepTelemetry>)> =
        run_world(p, world_config, move |comm: &mut Comm<Msg>| {
            let store = slots_ref[comm.rank()]
                .lock()
                .take()
                .expect("store taken once per rank");
            let mut state = RankState::new(comm.rank(), (*part_ref).clone(), store, seed, window)
                .with_fastpath(local_fastpath)
                .with_spec_batch(spec_batch);
            if let Some(clock) = clock_ref {
                state = state.with_obs(obs_spec.build(clock.clone()));
            }
            let telemetry: Vec<StepTelemetry> = {
                let mut transport = MpiliteTransport::new(comm);
                let mut scratch = StepScratch::new(p);
                (0..steps)
                    .map(|step| {
                        run_rank_step(
                            &mut transport,
                            &mut state,
                            &mut scratch,
                            harness.step_ops(step),
                            harness.uniform_q(),
                        )
                    })
                    .collect()
            };
            let comm_stats = comm.stats();
            let (store, tracker, stats, obs) = state.into_parts();
            (
                RankOutput {
                    store,
                    tracker,
                    stats,
                    comm: comm_stats,
                    obs,
                },
                telemetry,
            )
        });

    let meta = clock.as_ref().map(|c| RunMeta {
        clock: c.label(),
        wall_ns: c.now_ns().saturating_sub(run_start),
    });

    // Merge each rank's per-step telemetry into whole-world records.
    let mut telemetry = vec![StepTelemetry::default(); steps as usize];
    let mut outputs = Vec::with_capacity(p);
    for (output, rank_telemetry) in results {
        for (acc, step) in telemetry.iter_mut().zip(&rank_telemetry) {
            acc.merge(step);
        }
        outputs.push(output);
    }
    assemble_outcome(n, steps, initial_edges, outputs, telemetry, meta)
}
