//! The sequential edge-switch algorithm (Algorithm 1, Section 3.3).
//!
//! Repeatedly draw two uniform random edges, flip the straight/cross
//! coin, and apply the switch unless it would create a self-loop or
//! parallel edge or is useless — in which case the operation restarts
//! with a fresh draw. `O(t log d_max)` expected for sparse graphs.

use crate::obs::{Obs, ObsSpec, Phase, RunReport};
use crate::switch::{flip_kind, recombine, Recombination, RejectReason};
use crate::visit::VisitTracker;
use edgeswitch_dist::{root_rng, BlockRng64};
use edgeswitch_graph::{Edge, Graph, OrientedEdge};
use rand::Rng;

/// Per-reason rejection counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RejectCounts {
    /// Switch would create a self-loop.
    pub self_loop: u64,
    /// Switch would leave the pair unchanged.
    pub useless: u64,
    /// Switch would create a parallel edge.
    pub parallel: u64,
}

impl RejectCounts {
    /// Total rejections (= restarts).
    pub fn total(&self) -> u64 {
        self.self_loop + self.useless + self.parallel
    }

    pub(crate) fn bump(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::SelfLoop => self.self_loop += 1,
            RejectReason::Useless => self.useless += 1,
            RejectReason::ParallelEdge => self.parallel += 1,
            RejectReason::Contended => {
                unreachable!("sequential algorithm has no contention")
            }
        }
    }
}

/// Result of a sequential run.
#[derive(Clone, Debug)]
pub struct SequentialOutcome {
    /// Switch operations successfully performed.
    pub performed: u64,
    /// Operations abandoned after exhausting the retry budget (only
    /// pathological graphs — e.g. stars — can make this nonzero).
    pub abandoned: u64,
    /// Rejection counters (each rejection restarts the operation).
    pub rejects: RejectCounts,
    /// Visit tracking against the initial edge set.
    pub tracker: VisitTracker,
    /// Aggregated observability report (`Some` iff the run was
    /// observed, i.e. run via [`sequential_edge_switch_observed`] with a
    /// non-`Off` spec).
    pub report: Option<RunReport>,
}

impl SequentialOutcome {
    /// Observed visit rate after the run.
    pub fn visit_rate(&self) -> f64 {
        self.tracker.visit_rate()
    }
}

/// Retry budget per operation before declaring the graph switch-starved.
const MAX_RETRIES_PER_OP: u64 = 100_000;

/// Perform `t` switch operations on `graph` in place (Algorithm 1).
///
/// Graphs with fewer than two edges, or degenerate graphs on which no
/// legal switch exists (e.g. a star), end early with the shortfall
/// reported in [`SequentialOutcome::abandoned`].
pub fn sequential_edge_switch<R: Rng + ?Sized>(
    graph: &mut Graph,
    t: u64,
    rng: &mut R,
) -> SequentialOutcome {
    sequential_edge_switch_observed(graph, t, rng, ObsSpec::Off)
}

/// [`sequential_edge_switch`] with observation attached: phase spans are
/// recorded against the monotonic clock and aggregated into
/// [`SequentialOutcome::report`]. Probes only read, so the switched graph
/// is bit-identical to an unobserved run under the same seed.
pub fn sequential_edge_switch_observed<R: Rng + ?Sized>(
    graph: &mut Graph,
    t: u64,
    rng: &mut R,
    spec: ObsSpec,
) -> SequentialOutcome {
    let mut obs = if spec.enabled() {
        spec.build_mono()
    } else {
        Obs::noop()
    };
    let run_start = obs.now();
    let mut outcome = SequentialOutcome {
        performed: 0,
        abandoned: 0,
        rejects: RejectCounts::default(),
        tracker: VisitTracker::new(graph.edges()),
        report: None,
    };
    if graph.num_edges() < 2 {
        outcome.abandoned = t;
        finish_report(&mut outcome, obs, run_start);
        return outcome;
    }
    let chunk = run_ops_chunk(
        graph,
        t,
        rng,
        &mut outcome.tracker,
        &mut outcome.rejects,
        &mut outcome.performed,
        &mut obs,
    );
    if chunk == ChunkOutcome::Starved {
        // No legal switch found; the remaining budget will fare no
        // better on a graph this degenerate.
        outcome.abandoned = t - outcome.performed;
    }
    finish_report(&mut outcome, obs, run_start);
    outcome
}

/// How a chunk of operations ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChunkOutcome {
    /// All `ops` operations performed.
    Ran,
    /// An operation exhausted its retry budget; the graph is
    /// switch-starved and the caller should abandon the rest.
    Starved,
}

/// Run up to `ops` switch operations — the body of Algorithm 1, with all
/// accumulating state passed in by the caller.
///
/// This is the single implementation shared by the one-shot entry points
/// and [`SequentialResumable`]: chunk boundaries consume no randomness
/// and touch no state beyond the arguments, so splitting a budget across
/// calls is bit-identical to one uninterrupted call.
fn run_ops_chunk<R: Rng + ?Sized>(
    graph: &mut Graph,
    ops: u64,
    rng: &mut R,
    tracker: &mut VisitTracker,
    rejects: &mut RejectCounts,
    performed: &mut u64,
    obs: &mut Obs,
) -> ChunkOutcome {
    'ops: for _ in 0..ops {
        let mut retries = 0u64;
        loop {
            let sample_start = obs.now();
            let e1 = OrientedEdge::from_edge(graph.sample_edge(rng).expect("m >= 2"));
            let e2 = OrientedEdge::from_edge(graph.sample_edge(rng).expect("m >= 2"));
            let kind = flip_kind(rng);
            obs.span_since(Phase::Sample, sample_start);
            let legality_start = obs.now();
            let recombined = recombine(e1, e2, kind);
            let reason = match recombined {
                Recombination::Candidate { f1, f2 } => {
                    if graph.has_edge(f1) || graph.has_edge(f2) {
                        obs.span_since(Phase::Legality, legality_start);
                        RejectReason::ParallelEdge
                    } else {
                        obs.span_since(Phase::Legality, legality_start);
                        let apply_start = obs.now();
                        let (o1, o2) = (e1.edge(), e2.edge());
                        graph.remove_edge(o1).expect("sampled edge exists");
                        graph.remove_edge(o2).expect("sampled edge exists");
                        graph.add_edge(f1).expect("checked absent");
                        graph.add_edge(f2).expect("checked absent");
                        tracker.record_removal(o1);
                        tracker.record_removal(o2);
                        *performed += 1;
                        obs.span_since(Phase::SwitchApply, apply_start);
                        continue 'ops;
                    }
                }
                Recombination::Rejected(r) => {
                    obs.span_since(Phase::Legality, legality_start);
                    r
                }
            };
            rejects.bump(reason);
            retries += 1;
            if retries >= MAX_RETRIES_PER_OP {
                return ChunkOutcome::Starved;
            }
        }
    }
    ChunkOutcome::Ran
}

/// Fold an observation context into the outcome's [`RunReport`] (no-op
/// for unobserved runs).
fn finish_report(outcome: &mut SequentialOutcome, obs: Obs, run_start: u64) {
    if !obs.enabled() {
        return;
    }
    let wall_ns = obs.now().saturating_sub(run_start);
    if let Some(rec) = obs.finish() {
        outcome.report = Some(RunReport::from_obs("monotonic", 1, wall_ns, &rec, None));
    }
}

/// Perform the number of operations required for an expected visit rate
/// `x` (Section 3.1: `t = E[T]/2`), returning the outcome and the `t`
/// used.
pub fn sequential_for_visit_rate<R: Rng + ?Sized>(
    graph: &mut Graph,
    x: f64,
    rng: &mut R,
) -> (SequentialOutcome, u64) {
    let t = edgeswitch_dist::switch_ops_for_visit_rate(graph.num_edges() as u64, x);
    (sequential_edge_switch(graph, t, rng), t)
}

/// The persistent state of a [`SequentialResumable`] between chunks —
/// everything a resumed run needs to continue bit-identically.
///
/// Serialized by the snapshot codec in
/// [`crate::parallel::wire`]; the RNG is captured as its
/// stream position and re-derived from the seed on restore.
#[derive(Clone, Debug, PartialEq)]
pub struct SeqCheckpoint {
    /// Job seed (the RNG stream is `root_rng(seed)`).
    pub seed: u64,
    /// Vertex count of the graph under randomization.
    pub n: usize,
    /// Total operation budget.
    pub t: u64,
    /// Operations performed so far.
    pub performed: u64,
    /// Operations abandoned (nonzero only once starved, i.e. done).
    pub abandoned: u64,
    /// Rejection counters so far.
    pub rejects: RejectCounts,
    /// [`VisitTracker::initial_count`] at capture.
    pub tracker_initial: usize,
    /// Unvisited edge keys, sorted for deterministic snapshot bytes.
    pub tracker_remaining: Vec<u64>,
    /// Current graph edges in pool (insertion) order — pool order is
    /// sampling order, so it is load-bearing.
    pub graph_edges: Vec<Edge>,
    /// Words served from the RNG stream at capture.
    pub rng_words: u64,
}

/// Algorithm 1 as a pausable engine: the same switch loop as
/// [`sequential_edge_switch`], split into caller-sized chunks with a
/// checkpoint between any two of them.
///
/// Chunk boundaries consume no randomness and the RNG is block-buffered
/// with a word counter ([`BlockRng64`]), so for a given `(graph, t,
/// seed)` the final graph and counters are bit-identical whether the
/// budget runs in one call, many chunks, or across a
/// checkpoint/restore — the property the job service's checkpointer
/// relies on. Resumable runs are unobserved (probes cannot be
/// snapshotted); progress is read from [`SequentialResumable::performed`]
/// instead.
pub struct SequentialResumable {
    graph: Graph,
    seed: u64,
    t: u64,
    performed: u64,
    abandoned: u64,
    rejects: RejectCounts,
    tracker: VisitTracker,
    rng: BlockRng64,
    obs: Obs,
}

impl SequentialResumable {
    /// Start a run of `t` operations on `graph` seeded with `seed`.
    ///
    /// The RNG stream is `root_rng(seed)` behind a block buffer —
    /// bit-identical to the bare stream the one-shot entry points use.
    pub fn new(graph: Graph, t: u64, seed: u64) -> Self {
        let tracker = VisitTracker::new(graph.edges());
        let mut this = SequentialResumable {
            graph,
            seed,
            t,
            performed: 0,
            abandoned: 0,
            rejects: RejectCounts::default(),
            tracker,
            rng: BlockRng64::new(root_rng(seed)),
            obs: Obs::noop(),
        };
        if this.graph.num_edges() < 2 {
            this.abandoned = t;
        }
        this
    }

    /// Run up to `max_ops` further operations; returns how many were
    /// performed this chunk. Starvation abandons the rest of the budget,
    /// exactly like the one-shot path.
    pub fn step(&mut self, max_ops: u64) -> u64 {
        if self.is_done() {
            return 0;
        }
        let before = self.performed;
        let ops = max_ops.min(self.t - self.performed);
        let chunk = run_ops_chunk(
            &mut self.graph,
            ops,
            &mut self.rng,
            &mut self.tracker,
            &mut self.rejects,
            &mut self.performed,
            &mut self.obs,
        );
        if chunk == ChunkOutcome::Starved {
            self.abandoned = self.t - self.performed;
        }
        self.performed - before
    }

    /// Stream live progress out of this run: cumulative span totals go
    /// through `tx` every `every` spans (see
    /// [`StreamingProbe`](crate::obs::StreamingProbe)). Probes only read,
    /// so a streamed run stays bit-identical to a silent one; snapshots
    /// do not carry the probe — a restored run starts silent until a
    /// probe is attached again.
    pub fn attach_probe(
        &mut self,
        tx: std::sync::mpsc::Sender<crate::obs::ProgressEvent>,
        every: u64,
    ) {
        self.obs = Obs::with_probe(
            Box::new(crate::obs::StreamingProbe::new(tx, every)),
            std::sync::Arc::new(crate::obs::MonoClock::new()),
        );
    }

    /// Whether the budget is exhausted (performed or abandoned).
    pub fn is_done(&self) -> bool {
        self.performed + self.abandoned >= self.t
    }

    /// Operations performed so far.
    pub fn performed(&self) -> u64 {
        self.performed
    }

    /// Total operation budget.
    pub fn budget(&self) -> u64 {
        self.t
    }

    /// Observed visit rate so far.
    pub fn visit_rate(&self) -> f64 {
        self.tracker.visit_rate()
    }

    /// Capture the complete engine state at a chunk boundary.
    pub fn checkpoint(&self) -> SeqCheckpoint {
        let mut tracker_remaining: Vec<u64> = self.tracker.remaining_keys().collect();
        tracker_remaining.sort_unstable();
        SeqCheckpoint {
            seed: self.seed,
            n: self.graph.num_vertices(),
            t: self.t,
            performed: self.performed,
            abandoned: self.abandoned,
            rejects: self.rejects,
            tracker_initial: self.tracker.initial_count(),
            tracker_remaining,
            graph_edges: self.graph.edges().collect(),
            rng_words: self.rng.words_served(),
        }
    }

    /// Rebuild an engine from a checkpoint: graph reinserted in captured
    /// pool order, tracker from its parts, RNG re-derived from the seed
    /// and fast-forwarded to the recorded stream position.
    pub fn restore(ckpt: &SeqCheckpoint) -> Self {
        let graph = Graph::from_edges(ckpt.n, ckpt.graph_edges.iter().copied())
            .expect("checkpointed graph is well-formed");
        let mut rng = BlockRng64::new(root_rng(ckpt.seed));
        rng.skip_words(ckpt.rng_words);
        SequentialResumable {
            graph,
            seed: ckpt.seed,
            t: ckpt.t,
            performed: ckpt.performed,
            abandoned: ckpt.abandoned,
            rejects: ckpt.rejects,
            tracker: VisitTracker::from_parts(
                ckpt.tracker_initial,
                ckpt.tracker_remaining.iter().copied(),
            ),
            rng,
            obs: Obs::noop(),
        }
    }

    /// Tear down into the switched graph and the run outcome
    /// (`report` is `None`: resumable runs are unobserved).
    pub fn finish(self) -> (Graph, SequentialOutcome) {
        (
            self.graph,
            SequentialOutcome {
                performed: self.performed,
                abandoned: self.abandoned,
                rejects: self.rejects,
                tracker: self.tracker,
                report: None,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeswitch_dist::root_rng;
    use edgeswitch_graph::generators::erdos_renyi_gnm;
    use edgeswitch_graph::Edge;

    #[test]
    fn preserves_degree_sequence_and_simplicity() {
        let mut rng = root_rng(1);
        let mut g = erdos_renyi_gnm(300, 1200, &mut rng);
        let before = g.degree_sequence();
        let out = sequential_edge_switch(&mut g, 5000, &mut rng);
        assert_eq!(out.performed, 5000);
        assert_eq!(g.degree_sequence(), before);
        g.check_invariants().unwrap();
    }

    #[test]
    fn preserves_edge_count() {
        let mut rng = root_rng(2);
        let mut g = erdos_renyi_gnm(100, 400, &mut rng);
        sequential_edge_switch(&mut g, 1000, &mut rng);
        assert_eq!(g.num_edges(), 400);
    }

    #[test]
    fn visit_rate_grows_with_t() {
        let mut rng = root_rng(3);
        let mut g = erdos_renyi_gnm(200, 800, &mut rng);
        let out1 = sequential_edge_switch(&mut g, 100, &mut rng);
        let r1 = out1.visit_rate();
        let out2 = sequential_edge_switch(&mut g, 900, &mut rng);
        // Fresh tracker per call; just check both are sane and the larger
        // budget visits more.
        assert!(out2.visit_rate() > r1);
    }

    #[test]
    fn visit_rate_matches_target_on_medium_graph() {
        // Section 3.1's headline experiment at reduced scale: x = 0.5.
        let mut rng = root_rng(4);
        let mut g = erdos_renyi_gnm(2000, 20_000, &mut rng);
        let (out, _t) = sequential_for_visit_rate(&mut g, 0.5, &mut rng);
        let observed = out.visit_rate();
        assert!(
            (observed - 0.5).abs() < 0.02,
            "observed visit rate {observed} far from 0.5"
        );
    }

    #[test]
    fn star_graph_abandons_gracefully() {
        let mut rng = root_rng(5);
        let mut g = Graph::from_edges(6, (1..6u64).map(|v| Edge::new(0, v))).unwrap();
        let out = sequential_edge_switch(&mut g, 10, &mut rng);
        assert_eq!(out.performed, 0);
        assert_eq!(out.abandoned, 10);
        assert!(out.rejects.total() >= MAX_RETRIES_PER_OP);
        // Graph unchanged.
        assert_eq!(g.degree(0), 5);
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        let mut rng = root_rng(6);
        let mut g0 = Graph::new(0);
        assert_eq!(sequential_edge_switch(&mut g0, 5, &mut rng).abandoned, 5);
        let mut g1 = Graph::from_edges(2, vec![Edge::new(0, 1)]).unwrap();
        assert_eq!(sequential_edge_switch(&mut g1, 5, &mut rng).abandoned, 5);
    }

    #[test]
    fn zero_ops_is_identity() {
        let mut rng = root_rng(7);
        let mut g = erdos_renyi_gnm(50, 100, &mut rng);
        let before = g.sorted_edges();
        let out = sequential_edge_switch(&mut g, 0, &mut rng);
        assert_eq!(out.performed, 0);
        assert_eq!(g.sorted_edges(), before);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = root_rng(8);
        let mut g1 = erdos_renyi_gnm(100, 300, &mut r1);
        sequential_edge_switch(&mut g1, 500, &mut r1);

        let mut r2 = root_rng(8);
        let mut g2 = erdos_renyi_gnm(100, 300, &mut r2);
        sequential_edge_switch(&mut g2, 500, &mut r2);

        assert!(g1.same_edge_set(&g2));
    }

    #[test]
    fn resumable_chunked_matches_one_shot() {
        let mut rng = root_rng(11);
        let g0 = erdos_renyi_gnm(120, 500, &mut rng);

        let mut reference = g0.clone();
        let ref_out = sequential_edge_switch(&mut reference, 800, &mut root_rng(42));

        let mut eng = SequentialResumable::new(g0, 800, 42);
        while !eng.is_done() {
            eng.step(37); // deliberately awkward chunk size
        }
        let (g, out) = eng.finish();
        assert_eq!(g.sorted_edges(), reference.sorted_edges());
        assert_eq!(out.performed, ref_out.performed);
        assert_eq!(out.rejects, ref_out.rejects);
        assert_eq!(out.tracker.visited_count(), ref_out.tracker.visited_count());
    }

    #[test]
    fn resumable_checkpoint_restore_is_bit_identical() {
        let mut rng = root_rng(12);
        let g0 = erdos_renyi_gnm(150, 600, &mut rng);

        let mut full = SequentialResumable::new(g0.clone(), 1000, 7);
        while !full.is_done() {
            full.step(1000);
        }
        let (gf, of) = full.finish();

        let mut first = SequentialResumable::new(g0, 1000, 7);
        first.step(333);
        let ckpt = first.checkpoint();
        drop(first); // simulate the process dying
        let mut second = SequentialResumable::restore(&ckpt);
        while !second.is_done() {
            second.step(250);
        }
        let (gr, or) = second.finish();
        assert_eq!(gf.sorted_edges(), gr.sorted_edges());
        assert_eq!(of.performed, or.performed);
        assert_eq!(of.rejects, or.rejects);
        assert_eq!(of.tracker.visited_count(), or.tracker.visited_count());
    }

    #[test]
    fn resumable_starved_graph_abandons() {
        let g = Graph::from_edges(6, (1..6u64).map(|v| Edge::new(0, v))).unwrap();
        let mut eng = SequentialResumable::new(g, 10, 5);
        eng.step(10);
        assert!(eng.is_done());
        let (_, out) = eng.finish();
        assert_eq!(out.performed, 0);
        assert_eq!(out.abandoned, 10);
    }

    #[test]
    fn randomizes_structure() {
        // Switching must actually change the edge set at full visit rate.
        let mut rng = root_rng(9);
        let mut g = erdos_renyi_gnm(200, 1000, &mut rng);
        let before = g.clone();
        let (out, _) = sequential_for_visit_rate(&mut g, 1.0, &mut rng);
        assert!(out.visit_rate() > 0.99);
        assert!(!g.same_edge_set(&before));
    }
}
