//! Global Curveball trades — the second randomization engine.
//!
//! One **pass** draws a uniform random perfect matching of the vertices
//! (Carstens/Hamann/Meyer et al., arXiv 1804.08487). Each matched pair
//! `(u, v)` executes one **trade**: the neighborhoods `N(u) \ {v}` and
//! `N(v) \ {u}` are split into their common part (which stays put) and
//! the disjoint union `D`, `D` is Fisher–Yates-shuffled with a
//! per-trade RNG, and the first `|N(u) \ N(v)|` entries become `u`'s new
//! disjoint neighbors, the rest `v`'s. Every vertex keeps its exact
//! degree — including the far endpoints, whose incident edge count is
//! untouched — and the graph stays simple by construction.
//!
//! **Determinism.** The matching of pass `P` and the shuffle of trade
//! `k` in pass `P` are drawn from substreams keyed only on
//! `(seed, P)` and `(seed, P, k)`, so any driver that executes the same
//! trades — in any order — produces bit-identical graphs. The parallel
//! driver ([`crate::parallel::trade`]) exploits this: it replays the
//! same per-trade streams out of order and still matches this
//! sequential engine edge-for-edge.
//!
//! **Visit-rate mapping.** A trade *re-deals* exactly the edges whose
//! far endpoint lies in the disjoint union; those initial edges are
//! recorded as visited in the [`VisitTracker`] (whether or not the
//! shuffle happens to reproduce them — they were re-randomized either
//! way). Common edges are untouched and not marked. This makes
//! [`crate::Run::visit_rate`] terminate for Curveball in the same
//! spirit as for switching: stop once the target fraction of initial
//! edges has been re-randomized.

use crate::obs::{Obs, ObsSpec, Phase, RunReport};
use crate::visit::VisitTracker;
use edgeswitch_dist::{substream_rng, Rng64};
use edgeswitch_graph::sampling::{fisher_yates_shuffle, random_matching};
use edgeswitch_graph::{Edge, Graph, VertexId};

/// Salt decorrelating every Curveball stream (matchings and per-trade
/// shuffles) from the switch protocol's root/rank/substreams derived
/// from the same master seed.
const TRADE_STREAM_SALT: u64 = 0xcb11;

/// Sentinel in [`PassPlan::tidx`]: vertex is unmatched this pass.
pub(crate) const NO_TRADE: u32 = u32::MAX;

/// Consecutive zero-progress passes before a visit-rate run concludes
/// the graph cannot mix further (stars, empty graphs).
const STALL_PASS_LIMIT: u32 = 3;

/// Work budget of a Curveball run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TradeBudget {
    /// Run whole passes until at least this many trades have executed
    /// (a pass of an `n`-vertex graph executes `⌊n/2⌋` trades).
    Trades(u64),
    /// Run whole passes until the global visit rate reaches the target
    /// (clamped to `≤ 1`), giving up after [`STALL_PASS_LIMIT`]
    /// consecutive passes without progress.
    VisitRate(f64),
}

/// The deterministic shape of one pass: the trade pairs and the inverse
/// vertex → trade-index map. Every driver (and every rank of the
/// parallel driver) rebuilds this identically from `(seed, pass)` with
/// zero communication.
pub(crate) struct PassPlan {
    /// The pass index this plan was drawn for.
    pub pass: u64,
    /// Trade `k` is `pairs[k] = (u, v)` with `u < v`.
    pub pairs: Vec<(VertexId, VertexId)>,
    /// Per vertex: its trade index this pass, or [`NO_TRADE`].
    pub tidx: Vec<u32>,
}

impl PassPlan {
    /// The matching of pass `pass` under `seed`.
    pub fn build(n: usize, seed: u64, pass: u64) -> PassPlan {
        let mut rng = substream_rng(seed ^ TRADE_STREAM_SALT, pass, 0);
        let pairs = random_matching(n, &mut rng);
        let mut tidx = vec![NO_TRADE; n];
        for (k, &(u, v)) in pairs.iter().enumerate() {
            tidx[u as usize] = k as u32;
            tidx[v as usize] = k as u32;
        }
        PassPlan { pass, pairs, tidx }
    }

    /// Trade index of `v` this pass ([`NO_TRADE`] if unmatched).
    #[inline]
    pub fn trade_of(&self, v: VertexId) -> u32 {
        self.tidx[v as usize]
    }
}

/// The shuffle stream of trade `k` in pass `pass` (stream `0` is the
/// pass's matching draw).
pub(crate) fn trade_rng(seed: u64, pass: u64, trade: u32) -> Rng64 {
    substream_rng(seed ^ TRADE_STREAM_SALT, pass, trade as u64 + 1)
}

/// A trade's neighborhood decomposition: `a`/`b` are the sorted
/// disjoint-neighbor lists of the two endpoints (each excluding the
/// other endpoint).
pub(crate) struct TradeSplit {
    /// Neighbors of both endpoints (edges stay put).
    pub common: Vec<VertexId>,
    /// Neighbors of `u` only.
    pub only_a: Vec<VertexId>,
    /// Neighbors of `v` only.
    pub only_b: Vec<VertexId>,
}

/// Two-pointer intersection of two sorted ascending vertex lists.
pub(crate) fn split_sorted(a: &[VertexId], b: &[VertexId]) -> TradeSplit {
    debug_assert!(a.windows(2).all(|w| w[0] < w[1]), "a must be sorted");
    debug_assert!(b.windows(2).all(|w| w[0] < w[1]), "b must be sorted");
    let mut split = TradeSplit {
        common: Vec::new(),
        only_a: Vec::new(),
        only_b: Vec::new(),
    };
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                split.common.push(a[i]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                split.only_a.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                split.only_b.push(b[j]);
                j += 1;
            }
        }
    }
    split.only_a.extend_from_slice(&a[i..]);
    split.only_b.extend_from_slice(&b[j..]);
    split
}

/// Shuffle the disjoint union `only_a ++ only_b` with the per-trade RNG
/// and re-deal it: the first `|only_a|` entries become the first
/// endpoint's new disjoint neighbors, the rest the second's. The RNG
/// consumption depends only on `|only_a| + |only_b|`, so every driver
/// replays it identically.
pub(crate) fn redeal(
    only_a: &[VertexId],
    only_b: &[VertexId],
    rng: &mut Rng64,
) -> (Vec<VertexId>, Vec<VertexId>) {
    let mut d: Vec<VertexId> = Vec::with_capacity(only_a.len() + only_b.len());
    d.extend_from_slice(only_a);
    d.extend_from_slice(only_b);
    fisher_yates_shuffle(&mut d, rng);
    let new_b = d.split_off(only_a.len());
    (d, new_b)
}

/// Whole-pass continuation policy shared by every Curveball driver.
/// Each driver feeds it the *global* visited count before each pass
/// (the parallel driver allgathers it), so all ranks and all drivers
/// stop after exactly the same pass.
pub(crate) struct PassController {
    budget: TradeBudget,
    /// Next pass index (also: passes completed).
    pub pass: u64,
    trades: u64,
    stall: u32,
    last_visited: u64,
}

impl PassController {
    pub fn new(budget: TradeBudget) -> Self {
        PassController {
            budget,
            pass: 0,
            trades: 0,
            stall: 0,
            last_visited: 0,
        }
    }

    /// Decide whether to run another pass. `initial_total` is the global
    /// initial edge count (constant — trades preserve `m`),
    /// `visited_total` the global visited count so far.
    pub fn should_continue(&mut self, n: usize, initial_total: u64, visited_total: u64) -> bool {
        if n < 2 || initial_total == 0 {
            return false;
        }
        match self.budget {
            TradeBudget::Trades(t) => self.trades < t,
            TradeBudget::VisitRate(x) => {
                let rate = visited_total as f64 / initial_total as f64;
                if rate >= x.min(1.0) {
                    return false;
                }
                if self.pass > 0 && visited_total == self.last_visited {
                    self.stall += 1;
                } else {
                    self.stall = 0;
                }
                self.last_visited = visited_total;
                self.stall < STALL_PASS_LIMIT
            }
        }
    }

    /// Account one completed pass of `pairs` trades.
    pub fn finish_pass(&mut self, pairs: u64) {
        self.trades += pairs;
        self.pass += 1;
    }
}

/// Result of a sequential Curveball run.
#[derive(Clone, Debug)]
pub struct CurveballOutcome {
    /// Whole passes executed.
    pub passes: u64,
    /// Trades executed (matched pairs processed; `⌊n/2⌋` per pass).
    pub trades: u64,
    /// Neighbors reassigned — summed sizes of the shuffled disjoint
    /// unions, the scheme's unit of work.
    pub neighbors_moved: u64,
    /// Visit tracking against the initial edge set.
    pub tracker: VisitTracker,
    /// Aggregated observability report (`Some` iff the run was observed).
    pub report: Option<RunReport>,
}

impl CurveballOutcome {
    /// Observed visit rate after the run.
    pub fn visit_rate(&self) -> f64 {
        self.tracker.visit_rate()
    }
}

/// Run Curveball passes on `graph` in place until `budget` is met.
pub fn sequential_curveball(graph: &mut Graph, budget: TradeBudget, seed: u64) -> CurveballOutcome {
    sequential_curveball_observed(graph, budget, seed, ObsSpec::Off)
}

/// [`sequential_curveball`] with observation attached ([`Phase`] spans
/// on the monotonic clock). Probes only read, so the traded graph is
/// bit-identical to an unobserved run under the same seed.
pub fn sequential_curveball_observed(
    graph: &mut Graph,
    budget: TradeBudget,
    seed: u64,
    spec: ObsSpec,
) -> CurveballOutcome {
    let mut obs = if spec.enabled() {
        spec.build_mono()
    } else {
        Obs::noop()
    };
    let run_start = obs.now();
    let mut outcome = CurveballOutcome {
        passes: 0,
        trades: 0,
        neighbors_moved: 0,
        tracker: VisitTracker::new(graph.edges()),
        report: None,
    };
    let n = graph.num_vertices();
    let initial_total = outcome.tracker.initial_count() as u64;
    let mut ctl = PassController::new(budget);
    while ctl.should_continue(n, initial_total, outcome.tracker.visited_count() as u64) {
        let plan = PassPlan::build(n, seed, ctl.pass);
        if plan.pairs.is_empty() {
            break;
        }
        for (k, &(u, v)) in plan.pairs.iter().enumerate() {
            let mut rng = trade_rng(seed, ctl.pass, k as u32);
            outcome.neighbors_moved +=
                run_trade(graph, &mut outcome.tracker, u, v, &mut rng, &mut obs) as u64;
        }
        outcome.trades += plan.pairs.len() as u64;
        ctl.finish_pass(plan.pairs.len() as u64);
        outcome.passes = ctl.pass;
    }
    if obs.enabled() {
        let wall_ns = obs.now().saturating_sub(run_start);
        if let Some(rec) = obs.finish() {
            outcome.report = Some(RunReport::from_obs("monotonic", 1, wall_ns, &rec, None));
        }
    }
    outcome
}

/// Execute one trade `(u, v)` on the full graph; returns the number of
/// neighbors moved (`|D|`).
fn run_trade(
    graph: &mut Graph,
    tracker: &mut VisitTracker,
    u: VertexId,
    v: VertexId,
    rng: &mut Rng64,
    obs: &mut Obs,
) -> usize {
    let shuffle_start = obs.now();
    let a: Vec<VertexId> = graph.neighbors(u).iter().filter(|&x| x != v).collect();
    let b: Vec<VertexId> = graph.neighbors(v).iter().filter(|&x| x != u).collect();
    let split = split_sorted(&a, &b);
    let (new_a, new_b) = redeal(&split.only_a, &split.only_b, rng);
    obs.span_since(Phase::TradeShuffle, shuffle_start);
    let moved = split.only_a.len() + split.only_b.len();
    if moved == 0 {
        return 0;
    }
    let apply_start = obs.now();
    for &x in &split.only_a {
        let e = Edge::new(u, x);
        graph.remove_edge(e).expect("disjoint neighbor edge exists");
        tracker.record_removal(e);
    }
    for &y in &split.only_b {
        let e = Edge::new(v, y);
        graph.remove_edge(e).expect("disjoint neighbor edge exists");
        tracker.record_removal(e);
    }
    for &z in &new_a {
        graph.add_edge(Edge::new(u, z)).expect("re-deal is simple");
    }
    for &z in &new_b {
        graph.add_edge(Edge::new(v, z)).expect("re-deal is simple");
    }
    obs.span_since(Phase::SwitchApply, apply_start);
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeswitch_dist::root_rng;
    use edgeswitch_graph::generators::{erdos_renyi_gnm, preferential_attachment};

    #[test]
    fn split_sorted_partitions_correctly() {
        let s = split_sorted(&[1, 3, 5, 7], &[2, 3, 6, 7, 9]);
        assert_eq!(s.common, vec![3, 7]);
        assert_eq!(s.only_a, vec![1, 5]);
        assert_eq!(s.only_b, vec![2, 6, 9]);
        let s = split_sorted(&[], &[1, 2]);
        assert_eq!(s.common, Vec::<VertexId>::new());
        assert_eq!(s.only_b, vec![1, 2]);
    }

    #[test]
    fn redeal_preserves_sizes_and_multiset() {
        let mut rng = trade_rng(7, 0, 0);
        let (na, nb) = redeal(&[1, 5, 9], &[2, 4], &mut rng);
        assert_eq!(na.len(), 3);
        assert_eq!(nb.len(), 2);
        let mut all: Vec<VertexId> = na.iter().chain(nb.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 4, 5, 9]);
    }

    #[test]
    fn pass_plan_is_deterministic_and_consistent() {
        let a = PassPlan::build(101, 42, 3);
        let b = PassPlan::build(101, 42, 3);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.pairs.len(), 50);
        for (k, &(u, v)) in a.pairs.iter().enumerate() {
            assert!(u < v);
            assert_eq!(a.trade_of(u), k as u32);
            assert_eq!(a.trade_of(v), k as u32);
        }
        let c = PassPlan::build(101, 42, 4);
        assert_ne!(a.pairs, c.pairs, "passes draw distinct matchings");
    }

    #[test]
    fn preserves_degree_sequence_and_simplicity() {
        let mut rng = root_rng(11);
        let mut g = erdos_renyi_gnm(300, 1200, &mut rng);
        let before = g.degree_sequence();
        let out = sequential_curveball(&mut g, TradeBudget::Trades(1000), 5);
        assert!(out.trades >= 1000);
        assert!(out.neighbors_moved > 0);
        assert_eq!(g.degree_sequence(), before);
        g.check_invariants().unwrap();
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r = root_rng(12);
        let base = erdos_renyi_gnm(200, 800, &mut r);
        let mut g1 = base.clone();
        let o1 = sequential_curveball(&mut g1, TradeBudget::Trades(500), 9);
        let mut g2 = base.clone();
        let o2 = sequential_curveball(&mut g2, TradeBudget::Trades(500), 9);
        assert_eq!(g1.sorted_edges(), g2.sorted_edges());
        assert_eq!(o1.neighbors_moved, o2.neighbors_moved);
        let mut g3 = base.clone();
        sequential_curveball(&mut g3, TradeBudget::Trades(500), 10);
        assert!(!g1.same_edge_set(&g3), "different seeds should diverge");
    }

    #[test]
    fn visit_rate_budget_terminates_at_target() {
        let mut rng = root_rng(13);
        let mut g = preferential_attachment(500, 5, &mut rng);
        let out = sequential_curveball(&mut g, TradeBudget::VisitRate(0.6), 3);
        assert!(out.visit_rate() >= 0.6, "rate {}", out.visit_rate());
        assert!(out.passes > 0);
    }

    #[test]
    fn star_graph_stalls_gracefully() {
        // Every trade pairs two leaves whose only neighbor (the hub) is
        // common, or hits the hub whose partner's neighborhood is a
        // subset: a few passes may move nothing and the run must stop.
        let mut g = Graph::from_edges(8, (1..8u64).map(|v| Edge::new(0, v))).unwrap();
        let before = g.degree_sequence();
        let out = sequential_curveball(&mut g, TradeBudget::VisitRate(0.9), 1);
        assert_eq!(g.degree_sequence(), before);
        assert!(out.passes < 100, "stall guard must bound the run");
    }

    #[test]
    fn zero_budget_and_tiny_graphs_are_identity() {
        let mut rng = root_rng(14);
        let mut g = erdos_renyi_gnm(50, 100, &mut rng);
        let before = g.sorted_edges();
        let out = sequential_curveball(&mut g, TradeBudget::Trades(0), 1);
        assert_eq!(out.passes, 0);
        assert_eq!(g.sorted_edges(), before);
        let mut g1 = Graph::new(1);
        let out = sequential_curveball(&mut g1, TradeBudget::Trades(10), 1);
        assert_eq!(out.trades, 0);
        let mut g0 = Graph::new(0);
        let out = sequential_curveball(&mut g0, TradeBudget::VisitRate(0.5), 1);
        assert_eq!(out.passes, 0);
    }

    #[test]
    fn randomizes_structure() {
        let mut rng = root_rng(15);
        let mut g = erdos_renyi_gnm(200, 1000, &mut rng);
        let before = g.clone();
        let out = sequential_curveball(&mut g, TradeBudget::VisitRate(0.95), 2);
        assert!(out.visit_rate() >= 0.95);
        assert!(!g.same_edge_set(&before));
    }

    #[test]
    fn observed_run_is_bit_identical_and_reports_trade_phase() {
        let mut rng = root_rng(16);
        let base = erdos_renyi_gnm(100, 400, &mut rng);
        let mut plain = base.clone();
        sequential_curveball(&mut plain, TradeBudget::Trades(200), 4);
        let mut observed = base.clone();
        let out = sequential_curveball_observed(
            &mut observed,
            TradeBudget::Trades(200),
            4,
            ObsSpec::Spans,
        );
        assert_eq!(plain.sorted_edges(), observed.sorted_edges());
        let report = out.report.expect("observed run must report");
        let shuffle = report.phase(Phase::TradeShuffle);
        assert_eq!(shuffle.phase, "trade-shuffle");
        assert!(shuffle.hist.count > 0);
    }
}
