//! Log₂-bucketed latency histograms.
//!
//! Durations land in bucket `⌊log₂ v⌋ + 1` (bucket 0 holds zeros), so 65
//! fixed `u64` counters cover the full nanosecond range with ≤ 2×
//! relative quantile error — no allocation, O(1) record, O(65) merge.
//! Quantiles are reported as the bucket's inclusive upper bound, clamped
//! to the observed maximum.

use serde::{Deserialize, Serialize};

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const BUCKETS: usize = 65;

/// A fixed-size log₂ histogram of nanosecond durations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogHist {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        LogHist::new()
    }
}

impl LogHist {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHist {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    #[inline]
    fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record one duration.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded duration (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Add another histogram's samples into this one.
    pub fn merge(&mut self, other: &LogHist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The quantile `q ∈ [0, 1]` as the upper bound of the bucket the
    /// rank falls in, clamped to the observed max. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Summarize into the fixed quantile set reports carry.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum_ns: self.sum,
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
            max_ns: self.max,
        }
    }
}

/// The report-facing summary of a [`LogHist`]: count, total and the
/// p50/p90/p99/max quantiles in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: u64,
    /// Median (bucket upper bound, ≤ 2× relative error).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Exact observed maximum.
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHist::bucket(0), 0);
        assert_eq!(LogHist::bucket(1), 1);
        assert_eq!(LogHist::bucket(2), 2);
        assert_eq!(LogHist::bucket(3), 2);
        assert_eq!(LogHist::bucket(4), 3);
        assert_eq!(LogHist::bucket(u64::MAX), 64);
    }

    #[test]
    fn empty_hist_summary_is_zero() {
        let h = LogHist::new();
        assert!(h.is_empty());
        assert_eq!(h.summary(), HistSummary::default());
    }

    #[test]
    fn quantiles_bound_the_data() {
        let mut h = LogHist::new();
        for v in [1u64, 2, 3, 100, 1000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 11_106);
        assert_eq!(h.max(), 10_000);
        let p50 = h.quantile(0.50);
        // rank 3 of 6 → the value 3's bucket [2,3]; upper bound 3.
        assert_eq!(p50, 3);
        // p99 → last sample's bucket, clamped to observed max.
        assert_eq!(h.quantile(0.99), 10_000);
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let vals_a = [5u64, 0, 17, 300];
        let vals_b = [2u64, 2_000_000, 9];
        let mut a = LogHist::new();
        let mut b = LogHist::new();
        let mut all = LogHist::new();
        for v in vals_a {
            a.record(v);
            all.record(v);
        }
        for v in vals_b {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn zeros_land_in_bucket_zero() {
        let mut h = LogHist::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.summary().p50_ns, 0);
    }
}
