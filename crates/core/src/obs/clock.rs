//! Clock injection: probes read time through a [`Clock`] so the same
//! instrumentation points serve wall-clock runs (threaded engine,
//! sequential algorithm) and the discrete-event simulator, which
//! advances a virtual nanosecond counter instead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond source. `Send + Sync` so one clock can be
/// shared across ranks (the DES owns a single virtual timeline).
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary (per-clock) epoch. Must never go
    /// backwards.
    fn now_ns(&self) -> u64;

    /// Stable label recorded in [`RunReport`](super::RunReport) so a
    /// reader knows which timeline the numbers live on.
    fn label(&self) -> &'static str;
}

/// Wall-clock time via [`Instant`], anchored at construction.
#[derive(Clone, Debug)]
pub struct MonoClock {
    epoch: Instant,
}

impl MonoClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        MonoClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonoClock {
    fn default() -> Self {
        MonoClock::new()
    }
}

impl Clock for MonoClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of run time.
        self.epoch.elapsed().as_nanos() as u64
    }

    fn label(&self) -> &'static str {
        "monotonic"
    }
}

/// A virtual timeline driven by a simulator: reads the shared cell the
/// DES advances as it executes events. Probes observing through this
/// clock report *virtual* nanoseconds.
#[derive(Clone, Debug)]
pub struct VirtualClock {
    cell: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A virtual clock over `cell`; the simulator stores the current
    /// virtual time there (Relaxed is sufficient — readers only need
    /// monotonicity per simulator thread).
    pub fn new(cell: Arc<AtomicU64>) -> Self {
        VirtualClock { cell }
    }

    /// The shared cell, for the simulator to advance.
    pub fn cell(&self) -> Arc<AtomicU64> {
        self.cell.clone()
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    fn label(&self) -> &'static str {
        "virtual"
    }
}

/// A hand-cranked clock for tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at 0.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advance by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    fn label(&self) -> &'static str {
        "manual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mono_clock_is_monotonic() {
        let c = MonoClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert_eq!(c.label(), "monotonic");
    }

    #[test]
    fn virtual_clock_reads_shared_cell() {
        let cell = Arc::new(AtomicU64::new(0));
        let c = VirtualClock::new(cell.clone());
        assert_eq!(c.now_ns(), 0);
        cell.store(1_234, Ordering::Relaxed);
        assert_eq!(c.now_ns(), 1_234);
        assert_eq!(c.label(), "virtual");
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        c.advance(7);
        c.advance(5);
        assert_eq!(c.now_ns(), 12);
        assert_eq!(c.label(), "manual");
    }
}
