//! Streaming progress: live events out of a running job.
//!
//! The report machinery in this module's siblings aggregates *after* the
//! run; a job server needs to narrate *during* it. Two bridges feed that
//! narration:
//!
//! - [`StreamingProbe`] is a [`Probe`] that forwards cumulative span
//!   totals over an [`mpsc`](std::sync::mpsc) channel every `every`
//!   spans. Like every probe it only reads — no RNG draws, no message
//!   reordering — so a streamed run stays bit-identical to a silent one.
//! - [`StepProgress::from_telemetry`] folds one step's merged
//!   [`StepTelemetry`] into a compact progress record, for drivers that
//!   step a world ([`SimWorld`](crate::parallel::SimWorld)) or chunk a
//!   sequential run
//!   ([`SequentialResumable`](crate::sequential::SequentialResumable)).
//!
//! Both arrive as [`ProgressEvent`]s; `crates/svc` serializes them onto
//! job event streams.

use super::{Phase, Probe, RankObs};
use crate::parallel::StepTelemetry;
use std::sync::mpsc::Sender;

/// One progress event streamed out of a running job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProgressEvent {
    /// Cumulative span totals from an attached [`StreamingProbe`].
    Spans(SpanTotals),
    /// One completed step (or sequential chunk) of a stepping driver.
    Step(StepProgress),
}

/// Cumulative per-phase span totals since the probe was attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanTotals {
    /// Spans observed across all phases.
    pub total: u64,
    /// Spans observed per [`Phase`] (indexed by `Phase as usize`).
    pub counts: [u64; Phase::COUNT],
    /// Nanoseconds accumulated per [`Phase`].
    pub ns: [u64; Phase::COUNT],
}

/// One step's worth of forward progress, in driver-independent units.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepProgress {
    /// Steps completed so far (1-based: the step this event closes).
    pub step: u64,
    /// Total steps the run will take (0 when unknown, e.g. sequential
    /// chunking).
    pub steps: u64,
    /// Switch operations performed so far, run-wide.
    pub performed: u64,
    /// The run's operation budget `t`.
    pub budget: u64,
    /// Observed visit rate so far.
    pub visit_rate: f64,
    /// Logical protocol messages this step (0 for sequential chunks).
    pub logical_msgs: u64,
}

impl StepProgress {
    /// Fold one step's merged telemetry into a progress record.
    /// `performed`, `budget` and `visit_rate` are run-cumulative and come
    /// from the driver; the telemetry contributes this step's messaging.
    pub fn from_telemetry(
        step: u64,
        steps: u64,
        performed: u64,
        budget: u64,
        visit_rate: f64,
        telemetry: &StepTelemetry,
    ) -> Self {
        StepProgress {
            step,
            steps,
            performed,
            budget,
            visit_rate,
            logical_msgs: telemetry.logical_msgs.total(),
        }
    }

    /// Fraction of the budget consumed, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.budget == 0 {
            1.0
        } else {
            (self.performed as f64 / self.budget as f64).min(1.0)
        }
    }
}

/// A [`Probe`] that streams [`SpanTotals`] snapshots over a channel as
/// the run executes: one event per `every` spans, plus a final event at
/// teardown. Send errors (receiver gone) are ignored — a disappearing
/// listener must never fail the run.
pub struct StreamingProbe {
    tx: Sender<ProgressEvent>,
    every: u64,
    unsent: u64,
    totals: SpanTotals,
}

impl StreamingProbe {
    /// Stream through `tx`, emitting every `every` spans (`every` is
    /// clamped to at least 1).
    pub fn new(tx: Sender<ProgressEvent>, every: u64) -> Self {
        StreamingProbe {
            tx,
            every: every.max(1),
            unsent: 0,
            totals: SpanTotals::default(),
        }
    }
}

impl Probe for StreamingProbe {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&mut self, phase: Phase, dur_ns: u64) {
        self.totals.total += 1;
        self.totals.counts[phase as usize] += 1;
        self.totals.ns[phase as usize] += dur_ns;
        self.unsent += 1;
        if self.unsent >= self.every {
            self.unsent = 0;
            let _ = self.tx.send(ProgressEvent::Spans(self.totals));
        }
    }

    fn finish(self: Box<Self>) -> Option<RankObs> {
        let _ = self.tx.send(ProgressEvent::Spans(self.totals));
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Obs;
    use crate::sequential::SequentialResumable;
    use edgeswitch_dist::root_rng;
    use edgeswitch_graph::generators::erdos_renyi_gnm;
    use std::sync::mpsc::channel;
    use std::sync::Arc;

    #[test]
    fn streaming_probe_emits_monotone_totals() {
        let (tx, rx) = channel();
        let clock = Arc::new(crate::obs::ManualClock::new());
        let mut obs = Obs::with_probe(Box::new(StreamingProbe::new(tx, 3)), clock.clone());
        for i in 0..10 {
            let t0 = obs.now();
            clock.advance(7);
            obs.span_since(Phase::Sample, t0);
            let _ = i;
        }
        obs.finish();
        let events: Vec<ProgressEvent> = rx.iter().collect();
        // 10 spans at every=3 → snapshots at 3, 6, 9, plus the final.
        assert_eq!(events.len(), 4);
        let mut last = 0;
        for ev in &events {
            let ProgressEvent::Spans(totals) = ev else {
                panic!("unexpected event {ev:?}");
            };
            assert!(totals.total >= last, "totals must be monotone");
            last = totals.total;
        }
        let ProgressEvent::Spans(end) = events[events.len() - 1] else {
            unreachable!()
        };
        assert_eq!(end.total, 10);
        assert_eq!(end.counts[Phase::Sample as usize], 10);
        assert_eq!(end.ns[Phase::Sample as usize], 70);
    }

    #[test]
    fn streamed_sequential_run_is_bit_identical_to_silent() {
        let g = erdos_renyi_gnm(120, 500, &mut root_rng(8));
        let mut silent = SequentialResumable::new(g.clone(), 600, 21);
        while !silent.is_done() {
            silent.step(97);
        }
        let (silent_graph, silent_out) = silent.finish();

        let (tx, rx) = channel();
        let mut streamed = SequentialResumable::new(g, 600, 21);
        streamed.attach_probe(tx, 16);
        while !streamed.is_done() {
            streamed.step(97);
        }
        let (streamed_graph, streamed_out) = streamed.finish();

        assert!(streamed_graph.same_edge_set(&silent_graph));
        assert_eq!(streamed_out.performed, silent_out.performed);
        assert_eq!(streamed_out.rejects, silent_out.rejects);
        let events: Vec<ProgressEvent> = rx.iter().collect();
        assert!(!events.is_empty(), "probe must stream");
    }

    #[test]
    fn step_progress_tracks_fraction() {
        let telemetry = StepTelemetry::default();
        let p = StepProgress::from_telemetry(2, 8, 250, 1000, 0.2, &telemetry);
        assert_eq!(p.logical_msgs, 0);
        assert!((p.fraction() - 0.25).abs() < 1e-12);
        let done = StepProgress {
            budget: 0,
            ..Default::default()
        };
        assert_eq!(done.fraction(), 1.0);
    }

    #[test]
    fn dropped_receiver_never_fails_the_run() {
        let (tx, rx) = channel();
        drop(rx);
        let clock = Arc::new(crate::obs::ManualClock::new());
        let mut obs = Obs::with_probe(Box::new(StreamingProbe::new(tx, 1)), clock);
        obs.span(Phase::Legality, 1);
        obs.span(Phase::Legality, 2);
        assert!(obs.finish().is_none());
    }
}
