//! The recording probe and its per-rank aggregate.

use super::hist::LogHist;
use super::{GaugeKind, Phase, Probe};
use crate::parallel::msg::MsgKind;

/// Count/sum/peak aggregation for a gauge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GaugeAgg {
    /// Number of samples.
    pub samples: u64,
    /// Sum of sampled values (for the mean).
    pub sum: u64,
    /// Largest sampled value.
    pub peak: u64,
}

impl GaugeAgg {
    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.samples += 1;
        self.sum = self.sum.saturating_add(v);
        self.peak = self.peak.max(v);
    }

    /// Fold another aggregate in.
    pub fn merge(&mut self, other: &GaugeAgg) {
        self.samples += other.samples;
        self.sum = self.sum.saturating_add(other.sum);
        self.peak = self.peak.max(other.peak);
    }

    /// Mean sampled value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }
}

/// Everything one rank recorded: per-phase span histograms, per-kind
/// round-trip histograms and gauge aggregates. Merged across ranks into
/// a [`RunReport`](super::RunReport).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankObs {
    /// Span histograms indexed by `Phase as usize`.
    pub phases: [LogHist; Phase::COUNT],
    /// Round-trip histograms indexed by `MsgKind as usize` (request
    /// kind; `Propose` carries whole-conversation lifetimes).
    pub rtt: [LogHist; MsgKind::COUNT],
    /// Gauge aggregates indexed by `GaugeKind as usize`.
    pub gauges: [GaugeAgg; GaugeKind::COUNT],
}

impl Default for RankObs {
    fn default() -> Self {
        RankObs {
            phases: std::array::from_fn(|_| LogHist::new()),
            rtt: std::array::from_fn(|_| LogHist::new()),
            gauges: [GaugeAgg::default(); GaugeKind::COUNT],
        }
    }
}

impl RankObs {
    /// Fold another rank's observations in.
    pub fn merge(&mut self, other: &RankObs) {
        for (a, b) in self.phases.iter_mut().zip(other.phases.iter()) {
            a.merge(b);
        }
        for (a, b) in self.rtt.iter_mut().zip(other.rtt.iter()) {
            a.merge(b);
        }
        for (a, b) in self.gauges.iter_mut().zip(other.gauges.iter()) {
            a.merge(b);
        }
    }

    /// Whether anything at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(LogHist::is_empty)
            && self.rtt.iter().all(LogHist::is_empty)
            && self.gauges.iter().all(|g| g.samples == 0)
    }
}

/// A [`Probe`] that aggregates every observation into a [`RankObs`].
#[derive(Clone, Debug, Default)]
pub struct RecordingProbe {
    obs: RankObs,
}

impl RecordingProbe {
    /// An empty recorder.
    pub fn new() -> Self {
        RecordingProbe::default()
    }
}

impl Probe for RecordingProbe {
    fn enabled(&self) -> bool {
        true
    }

    fn span(&mut self, phase: Phase, dur_ns: u64) {
        self.obs.phases[phase as usize].record(dur_ns);
    }

    fn rtt(&mut self, kind: MsgKind, dur_ns: u64) {
        self.obs.rtt[kind as usize].record(dur_ns);
    }

    fn gauge(&mut self, gauge: GaugeKind, value: u64) {
        self.obs.gauges[gauge as usize].record(value);
    }

    fn finish(self: Box<Self>) -> Option<RankObs> {
        Some(self.obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_agg_tracks_mean_and_peak() {
        let mut g = GaugeAgg::default();
        g.record(2);
        g.record(6);
        assert_eq!(g.samples, 2);
        assert_eq!(g.peak, 6);
        assert!((g.mean() - 4.0).abs() < 1e-12);
        let mut h = GaugeAgg::default();
        h.record(10);
        g.merge(&h);
        assert_eq!(g.samples, 3);
        assert_eq!(g.peak, 10);
    }

    #[test]
    fn recording_probe_round_trips_into_rank_obs() {
        let mut p = RecordingProbe::new();
        assert!(p.enabled());
        p.span(Phase::MsgWait, 40);
        p.span(Phase::MsgWait, 80);
        p.rtt(MsgKind::Validate, 15);
        p.gauge(GaugeKind::WindowOccupancy, 16);
        let obs = Box::new(p).finish().unwrap();
        assert!(!obs.is_empty());
        assert_eq!(obs.phases[Phase::MsgWait as usize].count(), 2);
        assert_eq!(obs.phases[Phase::MsgWait as usize].sum(), 120);
        assert_eq!(obs.rtt[MsgKind::Validate as usize].max(), 15);
        assert_eq!(obs.gauges[GaugeKind::WindowOccupancy as usize].peak, 16);
    }

    #[test]
    fn rank_obs_merge_is_elementwise() {
        let mut a = RankObs::default();
        let mut b = RankObs::default();
        a.phases[Phase::Sample as usize].record(10);
        b.phases[Phase::Sample as usize].record(30);
        b.rtt[MsgKind::CommitAdd as usize].record(5);
        a.merge(&b);
        assert_eq!(a.phases[Phase::Sample as usize].count(), 2);
        assert_eq!(a.phases[Phase::Sample as usize].max(), 30);
        assert_eq!(a.rtt[MsgKind::CommitAdd as usize].count(), 1);
        assert!(RankObs::default().is_empty());
    }
}
