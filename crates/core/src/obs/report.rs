//! The serializable run report: cross-rank aggregation of everything
//! the probes recorded.

use super::hist::HistSummary;
use super::recorder::RankObs;
use super::{GaugeKind, Phase};
use crate::parallel::msg::MsgKind;
use serde::{Deserialize, Serialize};
use serde_json::{json, Value};

/// The request kinds whose round trips are reported, in report order.
/// `Propose` carries whole-conversation lifetimes (propose → done),
/// `BatchPropose` speculative-round lifetimes (apply → verdict); the
/// others measure request → reply latency.
pub const RTT_KINDS: [MsgKind; 5] = [
    MsgKind::Propose,
    MsgKind::Validate,
    MsgKind::CommitAdd,
    MsgKind::CommitRemove,
    MsgKind::BatchPropose,
];

/// One phase's span histogram summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// [`Phase::label`].
    pub phase: String,
    /// Span durations in (clock-domain) nanoseconds.
    pub hist: HistSummary,
}

/// One message kind's round-trip histogram summary.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RttStat {
    /// [`MsgKind::label`] of the *request*.
    pub kind: String,
    /// Round-trip latencies in (clock-domain) nanoseconds.
    pub hist: HistSummary,
}

/// One gauge's count/mean/peak aggregate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeStat {
    /// Gauge name (`window-occupancy`, `serving-depth`,
    /// `recv-queue-depth`, `park`).
    pub gauge: String,
    /// Number of samples (for `park`: number of parks).
    pub samples: u64,
    /// Mean sampled value (for `park`: mean park duration in ns).
    pub mean: f64,
    /// Peak sampled value (for `park`: longest cumulative per-rank park
    /// time in ns).
    pub peak: u64,
}

/// Comm-layer gauge inputs harvested from `mpilite::CommStats` (threaded
/// driver only; the simulators have no receive queue or parking).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommGauges {
    /// Per-rank peak receive-queue depth.
    pub queue_peaks: Vec<u64>,
    /// Total park events across ranks.
    pub parks: u64,
    /// Total parked nanoseconds across ranks.
    pub park_ns: u64,
    /// Largest cumulative per-rank park time in nanoseconds.
    pub park_ns_max: u64,
}

/// Aggregated observability output of one run. Attached to
/// [`SequentialOutcome`](crate::sequential::SequentialOutcome) /
/// [`ParallelOutcome`](crate::parallel::ParallelOutcome) when the run
/// was observed, and exported as JSON by `repro trace`.
///
/// Schema stability: `phases` always holds all [`Phase::ALL`] entries in
/// order, `rtt` all [`RTT_KINDS`], and `gauges` the fixed four — empty
/// histograms report zero summaries rather than vanishing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Which timeline the nanoseconds live on: `"monotonic"` for real
    /// runs, `"virtual"` for the DES.
    pub clock: String,
    /// Number of ranks observed (1 for sequential).
    pub ranks: u64,
    /// End-to-end run duration in clock-domain nanoseconds.
    pub wall_ns: u64,
    /// Per-phase span summaries, indexed by `Phase as usize`.
    pub phases: Vec<PhaseStat>,
    /// Round-trip summaries for [`RTT_KINDS`], in that order.
    pub rtt: Vec<RttStat>,
    /// Gauge aggregates: `window-occupancy`, `serving-depth`,
    /// `recv-queue-depth`, `park`.
    pub gauges: Vec<GaugeStat>,
    /// Speculatively applied switches whose batch verdict confirmed them
    /// (zero unless the run had `spec_batch > 1`).
    #[serde(default)]
    pub spec_committed: u64,
    /// Speculatively applied switches rolled back on a rejected verdict
    /// and retried through the per-switch path.
    #[serde(default)]
    pub spec_rolled_back: u64,
}

impl RunReport {
    /// Build a report from the merged per-rank observations plus
    /// optional comm-layer gauges.
    pub fn from_obs(
        clock: &str,
        ranks: u64,
        wall_ns: u64,
        merged: &RankObs,
        comm: Option<&CommGauges>,
    ) -> Self {
        let phases = Phase::ALL
            .iter()
            .map(|p| PhaseStat {
                phase: p.label().to_string(),
                hist: merged.phases[*p as usize].summary(),
            })
            .collect();
        let rtt = RTT_KINDS
            .iter()
            .map(|k| RttStat {
                kind: k.label().to_string(),
                hist: merged.rtt[*k as usize].summary(),
            })
            .collect();
        let mut gauges: Vec<GaugeStat> = GaugeKind::ALL
            .iter()
            .map(|g| {
                let agg = &merged.gauges[*g as usize];
                GaugeStat {
                    gauge: g.label().to_string(),
                    samples: agg.samples,
                    mean: agg.mean(),
                    peak: agg.peak,
                }
            })
            .collect();
        let default_comm = CommGauges::default();
        let cg = comm.unwrap_or(&default_comm);
        let queue_peak = cg.queue_peaks.iter().copied().max().unwrap_or(0);
        let queue_mean = if cg.queue_peaks.is_empty() {
            0.0
        } else {
            cg.queue_peaks.iter().sum::<u64>() as f64 / cg.queue_peaks.len() as f64
        };
        gauges.push(GaugeStat {
            gauge: "recv-queue-depth".to_string(),
            samples: cg.queue_peaks.len() as u64,
            mean: queue_mean,
            peak: queue_peak,
        });
        gauges.push(GaugeStat {
            gauge: "park".to_string(),
            samples: cg.parks,
            mean: if cg.parks == 0 {
                0.0
            } else {
                cg.park_ns as f64 / cg.parks as f64
            },
            peak: cg.park_ns_max,
        });
        RunReport {
            clock: clock.to_string(),
            ranks,
            wall_ns,
            phases,
            rtt,
            gauges,
            spec_committed: 0,
            spec_rolled_back: 0,
        }
    }

    /// Attach the speculative-batch outcome counters (summed over
    /// ranks); a no-op shape-wise — the fields default to zero.
    pub fn with_spec_counters(mut self, committed: u64, rolled_back: u64) -> Self {
        self.spec_committed = committed;
        self.spec_rolled_back = rolled_back;
        self
    }

    /// The span summary for `phase` (reports always carry all phases).
    pub fn phase(&self, phase: Phase) -> &PhaseStat {
        &self.phases[phase as usize]
    }

    /// The round-trip summary for `kind`, if it is one of [`RTT_KINDS`].
    pub fn rtt_of(&self, kind: MsgKind) -> Option<&RttStat> {
        RTT_KINDS
            .iter()
            .position(|k| *k == kind)
            .map(|i| &self.rtt[i])
    }

    /// The gauge aggregate named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<&GaugeStat> {
        self.gauges.iter().find(|g| g.gauge == name)
    }

    /// Explicit JSON rendering.
    ///
    /// Built by hand with the `json!` macro rather than through
    /// `serde_json::to_value` so it produces the identical document
    /// under the real `serde_json` and the offline stub (whose derive
    /// renders structs as `null`). This is the schema the golden test
    /// pins and `repro trace` exports.
    pub fn to_json(&self) -> Value {
        fn hist(h: &HistSummary) -> Value {
            json!({
                "count": h.count,
                "sum_ns": h.sum_ns,
                "p50_ns": h.p50_ns,
                "p90_ns": h.p90_ns,
                "p99_ns": h.p99_ns,
                "max_ns": h.max_ns,
            })
        }
        let phases: Vec<Value> = self
            .phases
            .iter()
            .map(|p| {
                json!({
                    "phase": p.phase.clone(),
                    "hist": hist(&p.hist),
                })
            })
            .collect();
        let rtt: Vec<Value> = self
            .rtt
            .iter()
            .map(|r| {
                json!({
                    "kind": r.kind.clone(),
                    "hist": hist(&r.hist),
                })
            })
            .collect();
        let gauges: Vec<Value> = self
            .gauges
            .iter()
            .map(|g| {
                json!({
                    "gauge": g.gauge.clone(),
                    "samples": g.samples,
                    "mean": g.mean,
                    "peak": g.peak,
                })
            })
            .collect();
        json!({
            "clock": self.clock.clone(),
            "ranks": self.ranks,
            "wall_ns": self.wall_ns,
            "phases": Value::Array(phases),
            "rtt": Value::Array(rtt),
            "gauges": Value::Array(gauges),
            "spec_committed": self.spec_committed,
            "spec_rolled_back": self.spec_rolled_back,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut obs = RankObs::default();
        obs.phases[Phase::Sample as usize].record(100);
        obs.phases[Phase::MsgWait as usize].record(4_000);
        obs.rtt[MsgKind::Propose as usize].record(9_000);
        obs.gauges[GaugeKind::WindowOccupancy as usize].record(16);
        let comm = CommGauges {
            queue_peaks: vec![3, 7],
            parks: 4,
            park_ns: 2_000,
            park_ns_max: 1_500,
        };
        RunReport::from_obs("monotonic", 2, 123_456, &obs, Some(&comm))
    }

    #[test]
    fn report_is_schema_complete() {
        let r = sample_report();
        assert_eq!(r.phases.len(), Phase::COUNT);
        assert_eq!(r.rtt.len(), RTT_KINDS.len());
        assert_eq!(r.gauges.len(), GaugeKind::COUNT + 2);
        assert_eq!(r.phase(Phase::Sample).hist.count, 1);
        assert_eq!(r.phase(Phase::Legality).hist.count, 0);
        assert_eq!(r.rtt_of(MsgKind::Propose).unwrap().hist.max_ns, 9_000);
        assert!(r.rtt_of(MsgKind::BatchPropose).is_some());
        assert!(r.rtt_of(MsgKind::Done).is_none());
        assert_eq!((r.spec_committed, r.spec_rolled_back), (0, 0));
        let r = r.with_spec_counters(12, 3);
        assert_eq!((r.spec_committed, r.spec_rolled_back), (12, 3));
        let q = r.gauge("recv-queue-depth").unwrap();
        assert_eq!(q.peak, 7);
        assert_eq!(q.samples, 2);
        let park = r.gauge("park").unwrap();
        assert_eq!(park.samples, 4);
        assert!((park.mean - 500.0).abs() < 1e-9);
    }

    #[test]
    fn to_json_mirrors_the_struct() {
        let r = sample_report();
        let v = r.to_json();
        assert_eq!(v["clock"].as_str(), Some("monotonic"));
        assert_eq!(v["ranks"].as_u64(), Some(2));
        assert_eq!(v["wall_ns"].as_u64(), Some(123_456));
        let phases = v["phases"].as_array().unwrap();
        assert_eq!(phases.len(), Phase::COUNT);
        assert_eq!(phases[0]["phase"].as_str(), Some("sample"));
        assert_eq!(phases[0]["hist"]["count"].as_u64(), Some(1));
        let rtt = v["rtt"].as_array().unwrap();
        assert_eq!(rtt[0]["kind"].as_str(), Some("propose"));
        assert_eq!(rtt[0]["hist"]["max_ns"].as_u64(), Some(9_000));
        let gauges = v["gauges"].as_array().unwrap();
        assert_eq!(gauges.len(), 4);
        assert_eq!(gauges[3]["gauge"].as_str(), Some("park"));
        assert_eq!(v["spec_committed"].as_u64(), Some(0));
        assert_eq!(v["spec_rolled_back"].as_u64(), Some(0));
    }

    #[test]
    fn missing_comm_gauges_report_zeros() {
        let r = RunReport::from_obs("virtual", 4, 10, &RankObs::default(), None);
        let q = r.gauge("recv-queue-depth").unwrap();
        assert_eq!((q.samples, q.peak), (0, 0));
        let park = r.gauge("park").unwrap();
        assert_eq!((park.samples, park.peak), (0, 0));
        assert_eq!(r.clock, "virtual");
    }
}
