//! Zero-dependency observability: phase spans, latency histograms and
//! run reports for every driver.
//!
//! The paper's evaluation (§6) is about *where time goes* — the per-step
//! cost of the `q` refresh, message waiting versus switching, load
//! imbalance across ranks. This module is the measurement substrate:
//!
//! - [`Probe`] receives spans/latencies/gauges; the default
//!   [`NoopProbe`] compiles to a single branch on a cached `bool`
//!   (proven overhead-free by the `repro hotpath` probe gate), while
//!   [`RecordingProbe`] aggregates into log₂-bucketed histograms;
//! - [`Clock`] abstracts *when*: the threaded engine and the sequential
//!   algorithm use the monotonic [`MonoClock`], the DES injects a
//!   [`VirtualClock`] so its report is in virtual nanoseconds;
//! - [`Phase`] names the protocol's instrumented phases: edge sampling,
//!   legality check, message wait, switch apply, step barrier,
//!   q-refresh, the local fast path and speculative batch validation;
//! - [`RunReport`] is the serializable aggregate attached to
//!   [`SequentialOutcome`](crate::sequential::SequentialOutcome) /
//!   [`ParallelOutcome`](crate::parallel::ParallelOutcome) and exported
//!   by `repro trace`.
//!
//! Observation never perturbs the run: probes only *read* — no RNG
//! draws, no message reordering — so an observed run is bit-identical
//! to an unobserved one under the same seed (enforced by the
//! probe-identity conformance tests).

pub mod clock;
pub mod hist;
pub mod progress;
mod recorder;
mod report;

pub use clock::{Clock, ManualClock, MonoClock, VirtualClock};
pub use hist::{HistSummary, LogHist};
pub use progress::{ProgressEvent, SpanTotals, StepProgress, StreamingProbe};
pub use recorder::{GaugeAgg, RankObs, RecordingProbe};
pub use report::{CommGauges, GaugeStat, PhaseStat, RttStat, RunReport, RTT_KINDS};

use crate::parallel::msg::MsgKind;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The instrumented phases of a switch-protocol run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Drawing candidate edges (first/second edge sampling loops).
    Sample = 0,
    /// Legality checking: recombination plus existence/reservation
    /// (parallel-edge) checks.
    Legality = 1,
    /// Waiting for a protocol message (blocking receive, or the DES's
    /// virtual arrival gap).
    MsgWait = 2,
    /// Applying a switch: edge removals/insertions and visit tracking.
    SwitchApply = 3,
    /// The step-boundary collective (allgather of live edge counts).
    StepBarrier = 4,
    /// Refreshing the probability vector `q` and drawing the Algorithm-5
    /// multinomial quota.
    QRefresh = 5,
    /// One rank-local switch attempt taken end to end on the zero-message
    /// fast path (sample → legality → apply inline, covering the other
    /// phase spans it records along the way).
    LocalFastpath = 6,
    /// Serving one speculative `BatchPropose`: checking and creating all
    /// requested replacement edges at their owner (the owner-side cost
    /// of a speculative batch round).
    BatchValidate = 7,
    /// Executing one Curveball trade: splitting the paired neighborhoods
    /// into common/disjoint parts, shuffling the disjoint union, and
    /// reassigning (Curveball runs only; see DESIGN.md §4h).
    TradeShuffle = 8,
}

impl Phase {
    /// Number of phases (length of dense per-phase arrays).
    pub const COUNT: usize = 9;

    /// All phases, in slot order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Sample,
        Phase::Legality,
        Phase::MsgWait,
        Phase::SwitchApply,
        Phase::StepBarrier,
        Phase::QRefresh,
        Phase::LocalFastpath,
        Phase::BatchValidate,
        Phase::TradeShuffle,
    ];

    /// Stable label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Sample => "sample",
            Phase::Legality => "legality",
            Phase::MsgWait => "msg-wait",
            Phase::SwitchApply => "switch-apply",
            Phase::StepBarrier => "step-barrier",
            Phase::QRefresh => "q-refresh",
            Phase::LocalFastpath => "local-fastpath",
            Phase::BatchValidate => "batch-validate",
            Phase::TradeShuffle => "trade-shuffle",
        }
    }
}

/// Instantaneous quantities sampled by the protocol (aggregated as
/// count/mean/peak rather than histograms).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum GaugeKind {
    /// Own conversations in flight after a start (window occupancy).
    WindowOccupancy = 0,
    /// Conversations being served as partner when a proposal arrives.
    ServingDepth = 1,
}

impl GaugeKind {
    /// Number of gauge kinds.
    pub const COUNT: usize = 2;

    /// All gauge kinds, in slot order.
    pub const ALL: [GaugeKind; GaugeKind::COUNT] =
        [GaugeKind::WindowOccupancy, GaugeKind::ServingDepth];

    /// Stable label used in reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            GaugeKind::WindowOccupancy => "window-occupancy",
            GaugeKind::ServingDepth => "serving-depth",
        }
    }
}

/// Observation sink. All methods default to no-ops so custom probes can
/// implement only what they need; [`Obs`] additionally gates every call
/// on a cached `enabled` bit, so the no-op path costs one branch.
pub trait Probe: Send {
    /// Whether this probe wants data at all (checked once, cached).
    fn enabled(&self) -> bool {
        false
    }
    /// One completed phase span of `dur_ns` nanoseconds.
    fn span(&mut self, _phase: Phase, _dur_ns: u64) {}
    /// One completed request/response round trip, keyed by the request's
    /// [`MsgKind`] (`Propose` = whole conversation lifetime).
    fn rtt(&mut self, _kind: MsgKind, _dur_ns: u64) {}
    /// One gauge sample.
    fn gauge(&mut self, _gauge: GaugeKind, _value: u64) {}
    /// Tear down into the per-rank aggregate (`None` = nothing
    /// recorded).
    fn finish(self: Box<Self>) -> Option<RankObs> {
        None
    }
}

/// The always-off probe (default everywhere).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// Which observation to attach to a run. Serializable so it travels with
/// [`ParallelConfig`](crate::config::ParallelConfig).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObsSpec {
    /// No observation (zero overhead beyond one cold branch per probe
    /// point).
    #[default]
    Off,
    /// Record phase spans, round-trip latencies and gauges into
    /// histograms; the run's outcome carries a [`RunReport`].
    Spans,
}

impl ObsSpec {
    /// Whether this spec records anything.
    pub fn enabled(&self) -> bool {
        *self != ObsSpec::Off
    }

    /// Build the per-rank observation context, reading time from
    /// `clock` when recording.
    pub fn build(&self, clock: Arc<dyn Clock>) -> Obs {
        match self {
            ObsSpec::Off => Obs::noop(),
            ObsSpec::Spans => Obs::with_probe(Box::new(RecordingProbe::new()), clock),
        }
    }

    /// [`ObsSpec::build`] against the monotonic wall clock.
    pub fn build_mono(&self) -> Obs {
        self.build(Arc::new(MonoClock::new()))
    }
}

/// One rank's observation context: a probe plus the clock it reads.
/// Every operation is gated on a cached `enabled` bit so the disabled
/// path never reads the clock or virtual-dispatches into the probe.
pub struct Obs {
    enabled: bool,
    clock: Option<Arc<dyn Clock>>,
    probe: Box<dyn Probe>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::noop()
    }
}

impl Obs {
    /// The disabled context (all probe points cost one branch).
    pub fn noop() -> Self {
        Obs {
            enabled: false,
            clock: None,
            probe: Box::new(NoopProbe),
        }
    }

    /// An enabled context feeding `probe` with time from `clock`.
    pub fn with_probe(probe: Box<dyn Probe>, clock: Arc<dyn Clock>) -> Self {
        let enabled = probe.enabled();
        Obs {
            enabled,
            clock: if enabled { Some(clock) } else { None },
            probe,
        }
    }

    /// Whether observations are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current time in nanoseconds (0 when disabled — pair with the
    /// `*_since` recorders, which are no-ops then too).
    #[inline]
    pub fn now(&self) -> u64 {
        match &self.clock {
            Some(c) if self.enabled => c.now_ns(),
            _ => 0,
        }
    }

    /// Record a phase span of an explicit duration.
    #[inline]
    pub fn span(&mut self, phase: Phase, dur_ns: u64) {
        if self.enabled {
            self.probe.span(phase, dur_ns);
        }
    }

    /// Record a phase span from a start stamp taken with [`Obs::now`].
    #[inline]
    pub fn span_since(&mut self, phase: Phase, start_ns: u64) {
        if self.enabled {
            let now = self.now();
            self.probe.span(phase, now.saturating_sub(start_ns));
        }
    }

    /// Record a round trip from a start stamp taken with [`Obs::now`].
    #[inline]
    pub fn rtt_since(&mut self, kind: MsgKind, start_ns: u64) {
        if self.enabled {
            let now = self.now();
            self.probe.rtt(kind, now.saturating_sub(start_ns));
        }
    }

    /// Record a gauge sample.
    #[inline]
    pub fn gauge(&mut self, gauge: GaugeKind, value: u64) {
        if self.enabled {
            self.probe.gauge(gauge, value);
        }
    }

    /// Tear down into the recorded per-rank aggregate.
    pub fn finish(self) -> Option<RankObs> {
        self.probe.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_obs_is_disabled_and_yields_nothing() {
        let mut obs = Obs::noop();
        assert!(!obs.enabled());
        assert_eq!(obs.now(), 0);
        obs.span(Phase::Sample, 5);
        obs.gauge(GaugeKind::WindowOccupancy, 3);
        assert!(obs.finish().is_none());
    }

    #[test]
    fn spans_spec_records_through_a_manual_clock() {
        let clock = Arc::new(ManualClock::new());
        let mut obs = ObsSpec::Spans.build(clock.clone());
        assert!(obs.enabled());
        let t0 = obs.now();
        clock.advance(250);
        obs.span_since(Phase::Legality, t0);
        obs.rtt_since(MsgKind::Propose, t0);
        obs.gauge(GaugeKind::ServingDepth, 2);
        let rec = obs.finish().expect("recording probe yields data");
        assert_eq!(rec.phases[Phase::Legality as usize].count(), 1);
        assert_eq!(rec.phases[Phase::Legality as usize].max(), 250);
        assert_eq!(rec.rtt[MsgKind::Propose as usize].count(), 1);
        assert_eq!(rec.gauges[GaugeKind::ServingDepth as usize].peak, 2);
    }

    #[test]
    fn labels_are_dense_and_distinct() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
            assert!(!p.label().is_empty());
        }
        for (i, g) in GaugeKind::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i);
            assert!(!g.label().is_empty());
        }
        assert_eq!(ObsSpec::default(), ObsSpec::Off);
        assert!(!ObsSpec::Off.enabled());
        assert!(ObsSpec::Spans.enabled());
    }
}
