//! Visit-rate tracking (Section 3.1).
//!
//! An edge of the *initial* graph is **visited** once it participates in
//! a switch (i.e. is removed and replaced). The visit rate is the
//! fraction of initial edges visited. A replacement edge may later
//! coincide with an already-visited initial edge; that does not un-visit
//! it — the tracker counts only first removals of initial edges.

use edgeswitch_graph::hashing::{set_with_capacity, FxHashSet};
use edgeswitch_graph::Edge;

/// Tracks which of the initial `m` edges have been switched away.
///
/// Keyed on the packed edge ([`Edge::key`]) with the fast in-repo hasher:
/// every performed switch probes this set twice, so it shares the hot
/// path with the edge pool.
#[derive(Clone, Debug)]
pub struct VisitTracker {
    initial_count: usize,
    remaining: FxHashSet<u64>,
}

impl VisitTracker {
    /// Start tracking the given initial edge set.
    pub fn new<I: IntoIterator<Item = Edge>>(initial_edges: I) -> Self {
        let iter = initial_edges.into_iter();
        let mut remaining: FxHashSet<u64> = set_with_capacity(iter.size_hint().0);
        remaining.extend(iter.map(|e| e.key()));
        VisitTracker {
            initial_count: remaining.len(),
            remaining,
        }
    }

    /// Record that `e` was removed by a switch. Returns `true` if this
    /// was the first visit of an initial edge.
    pub fn record_removal(&mut self, e: Edge) -> bool {
        self.remaining.remove(&e.key())
    }

    /// Number of initial edges.
    pub fn initial_count(&self) -> usize {
        self.initial_count
    }

    /// Number of initial edges visited so far (`m'` in the paper).
    pub fn visited_count(&self) -> usize {
        self.initial_count - self.remaining.len()
    }

    /// The observed visit rate `x' = m'/m` (`0` for an empty graph).
    pub fn visit_rate(&self) -> f64 {
        if self.initial_count == 0 {
            0.0
        } else {
            self.visited_count() as f64 / self.initial_count as f64
        }
    }

    /// Merge another tracker's progress (used to aggregate per-partition
    /// trackers after a distributed run; the trackers must have been
    /// created over disjoint initial edge sets).
    pub fn merge_disjoint(&mut self, other: VisitTracker) {
        self.initial_count += other.initial_count;
        self.remaining.extend(other.remaining);
    }

    /// Keys of initial edges not yet visited, in arbitrary order (for
    /// serializing a tracker across the process transport).
    pub fn remaining_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.remaining.iter().copied()
    }

    /// Rebuild a tracker from [`VisitTracker::initial_count`] and
    /// [`VisitTracker::remaining_keys`].
    pub fn from_parts<I: IntoIterator<Item = u64>>(initial_count: usize, remaining: I) -> Self {
        let iter = remaining.into_iter();
        let mut set: FxHashSet<u64> = set_with_capacity(iter.size_hint().0);
        set.extend(iter);
        debug_assert!(set.len() <= initial_count);
        VisitTracker {
            initial_count,
            remaining: set,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: u64, b: u64) -> Edge {
        Edge::new(a, b)
    }

    #[test]
    fn fresh_tracker_has_zero_rate() {
        let t = VisitTracker::new(vec![e(0, 1), e(1, 2)]);
        assert_eq!(t.initial_count(), 2);
        assert_eq!(t.visited_count(), 0);
        assert_eq!(t.visit_rate(), 0.0);
    }

    #[test]
    fn removal_of_initial_edge_counts_once() {
        let mut t = VisitTracker::new(vec![e(0, 1), e(1, 2)]);
        assert!(t.record_removal(e(0, 1)));
        assert!(!t.record_removal(e(0, 1)), "second removal not a visit");
        assert_eq!(t.visited_count(), 1);
        assert!((t.visit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn removal_of_modified_edge_does_not_count() {
        let mut t = VisitTracker::new(vec![e(0, 1)]);
        assert!(!t.record_removal(e(5, 6)));
        assert_eq!(t.visited_count(), 0);
    }

    #[test]
    fn full_visit_reaches_one() {
        let edges = vec![e(0, 1), e(1, 2), e(2, 3)];
        let mut t = VisitTracker::new(edges.clone());
        for edge in edges {
            t.record_removal(edge);
        }
        assert_eq!(t.visit_rate(), 1.0);
    }

    #[test]
    fn empty_graph_rate_is_zero() {
        let t = VisitTracker::new(vec![]);
        assert_eq!(t.visit_rate(), 0.0);
    }

    #[test]
    fn merge_disjoint_combines_progress() {
        let mut a = VisitTracker::new(vec![e(0, 1), e(1, 2)]);
        let mut b = VisitTracker::new(vec![e(5, 6), e(6, 7)]);
        a.record_removal(e(0, 1));
        b.record_removal(e(5, 6));
        b.record_removal(e(6, 7));
        a.merge_disjoint(b);
        assert_eq!(a.initial_count(), 4);
        assert_eq!(a.visited_count(), 3);
        assert!((a.visit_rate() - 0.75).abs() < 1e-12);
    }
}
