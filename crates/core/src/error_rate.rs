//! The similarity (error-rate) metric of Section 4.6, Equations 6–7.
//!
//! Both graphs' vertices are divided into `r` equal consecutive-label
//! blocks; `n(V_i, V_j)` counts edges between blocks `i ≤ j`. The edge
//! difference `ED = Σ_{i≤j} |n_a(V_i,V_j) − n_b(V_i,V_j)|` is at most
//! `2m`, giving the error rate `ER = ED / 2m × 100%`.

use edgeswitch_graph::Graph;

/// The upper-triangular block-pair edge-count matrix, flattened row-major
/// over `i ≤ j`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockMatrix {
    r: usize,
    counts: Vec<u64>,
    edges: u64,
}

impl BlockMatrix {
    /// Count `n(V_i, V_j)` over `r` consecutive equal blocks.
    ///
    /// # Panics
    /// Panics if `r` is zero or exceeds the vertex count of a non-empty
    /// graph.
    pub fn measure(graph: &Graph, r: usize) -> Self {
        assert!(r >= 1, "need at least one block");
        let n = graph.num_vertices();
        assert!(n == 0 || r <= n, "more blocks ({r}) than vertices ({n})");
        let mut counts = vec![0u64; r * (r + 1) / 2];
        let block = |v: u64| -> usize {
            // Equal consecutive ranges (first n mod r blocks one larger).
            ((v as u128 * r as u128) / n.max(1) as u128) as usize
        };
        for e in graph.edges() {
            let (bi, bj) = (block(e.src()), block(e.dst()));
            let (lo, hi) = if bi <= bj { (bi, bj) } else { (bj, bi) };
            counts[tri_index(lo, hi, r)] += 1;
        }
        BlockMatrix {
            r,
            counts,
            edges: graph.num_edges() as u64,
        }
    }

    /// Number of blocks `r`.
    pub fn blocks(&self) -> usize {
        self.r
    }

    /// `n(V_i, V_j)` for `i ≤ j`.
    pub fn count(&self, i: usize, j: usize) -> u64 {
        assert!(i <= j && j < self.r);
        self.counts[tri_index(i, j, self.r)]
    }

    /// Edge difference `ED` against another matrix (Equation 6).
    ///
    /// # Panics
    /// Panics if block counts differ.
    pub fn edge_difference(&self, other: &BlockMatrix) -> u64 {
        assert_eq!(self.r, other.r, "block counts must match");
        self.counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| a.abs_diff(b))
            .sum()
    }

    /// Error rate `ER = ED / 2m × 100%` (Equation 7), with `m` the edge
    /// count of the *first* graph (both graphs have equal `m` in every
    /// paper experiment — switches preserve edge count).
    pub fn error_rate(&self, other: &BlockMatrix) -> f64 {
        if self.edges == 0 {
            return 0.0;
        }
        self.edge_difference(other) as f64 / (2.0 * self.edges as f64) * 100.0
    }
}

/// Error rate between two graphs over `r` blocks — the paper's
/// `ER(G₁, G₂)` in one call.
pub fn error_rate(a: &Graph, b: &Graph, r: usize) -> f64 {
    BlockMatrix::measure(a, r).error_rate(&BlockMatrix::measure(b, r))
}

#[inline]
fn tri_index(i: usize, j: usize, r: usize) -> usize {
    debug_assert!(i <= j && j < r);
    // Row-major upper triangle: row i starts after i rows of lengths
    // r, r-1, ..., r-i+1, i.e. at i·r − i(i−1)/2 = i(2r − i + 1)/2.
    i * (2 * r - i + 1) / 2 + (j - i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgeswitch_graph::Edge;

    fn g(n: usize, edges: &[(u64, u64)]) -> Graph {
        Graph::from_edges(n, edges.iter().map(|&(a, b)| Edge::new(a, b))).unwrap()
    }

    #[test]
    fn tri_index_enumerates_upper_triangle() {
        let r = 4;
        let mut seen = vec![false; r * (r + 1) / 2];
        for i in 0..r {
            for j in i..r {
                let idx = tri_index(i, j, r);
                assert!(!seen[idx], "collision at ({i},{j})");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn measure_counts_blocks() {
        // 4 vertices, r=2: blocks {0,1} and {2,3}.
        let graph = g(4, &[(0, 1), (0, 2), (2, 3), (1, 3)]);
        let m = BlockMatrix::measure(&graph, 2);
        assert_eq!(m.count(0, 0), 1); // (0,1)
        assert_eq!(m.count(1, 1), 1); // (2,3)
        assert_eq!(m.count(0, 1), 2); // (0,2), (1,3)
    }

    #[test]
    fn identical_graphs_have_zero_error() {
        let graph = g(6, &[(0, 1), (2, 3), (4, 5), (0, 5)]);
        assert_eq!(error_rate(&graph, &graph, 3), 0.0);
    }

    #[test]
    fn disjoint_block_placement_maximizes_error() {
        // a: both edges inside block 0; b: both inside block 1.
        let a = g(4, &[(0, 1)]);
        let b = g(4, &[(2, 3)]);
        // ED = |1-0| + |0-1| = 2, 2m = 2 → 100%.
        assert_eq!(error_rate(&a, &b, 2), 100.0);
    }

    #[test]
    fn partial_difference() {
        let a = g(4, &[(0, 1), (2, 3)]);
        let b = g(4, &[(0, 1), (1, 2)]);
        // Differs in cells (1,1) and (0,1): ED = 2, 2m = 4 → 50%.
        assert_eq!(error_rate(&a, &b, 2), 50.0);
    }

    #[test]
    fn error_rate_is_symmetric() {
        let a = g(8, &[(0, 1), (2, 5), (6, 7), (3, 4)]);
        let b = g(8, &[(0, 2), (1, 5), (6, 7), (3, 7)]);
        assert_eq!(error_rate(&a, &b, 4), error_rate(&b, &a, 4));
    }

    #[test]
    fn uneven_blocks_cover_all_vertices() {
        // n = 5, r = 2: block boundary between labels 2 and 3 (0,1,2 | 3,4).
        let graph = g(5, &[(0, 4), (2, 3), (1, 2)]);
        let m = BlockMatrix::measure(&graph, 2);
        assert_eq!(m.count(0, 0) + m.count(0, 1) + m.count(1, 1), 3);
    }

    #[test]
    fn empty_graph_zero_error() {
        let a = Graph::new(0);
        let b = Graph::new(0);
        assert_eq!(error_rate(&a, &b, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "block counts must match")]
    fn mismatched_blocks_rejected() {
        let graph = g(4, &[(0, 1)]);
        let a = BlockMatrix::measure(&graph, 2);
        let b = BlockMatrix::measure(&graph, 4);
        let _ = a.edge_difference(&b);
    }
}
