//! Switch arithmetic: straight vs cross recombination and legality
//! (Sections 3.2 and 4.2, Figure 3).
//!
//! Edges drawn from reduced adjacency lists always arrive oriented
//! `tail < head`, so an unordered pair of edges can recombine two ways:
//!
//! - **cross**:    `(u1,v1),(u2,v2) → (u1,v2),(u2,v1)`
//! - **straight**: `(u1,v1),(u2,v2) → (u1,u2),(v1,v2)`
//!
//! Each is chosen with probability ½, restoring the switch distribution a
//! full (non-reduced) adjacency representation would produce.

use edgeswitch_graph::{Edge, OrientedEdge};
use serde::{Deserialize, Serialize};

/// Which recombination the ½-coin selected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchKind {
    /// `(u1,u2)` and `(v1,v2)`.
    Straight,
    /// `(u1,v2)` and `(u2,v1)`.
    Cross,
}

/// Why a proposed switch was rejected before any state changed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// A replacement edge would be a self-loop.
    SelfLoop,
    /// The replacement pair equals the original pair (no-op switch).
    Useless,
    /// A replacement edge already exists (or is about to exist) — a
    /// parallel edge.
    ParallelEdge,
    /// An edge involved is locked by a concurrent in-flight switch
    /// (parallel algorithm only).
    Contended,
}

/// Result of the pure recombination step (before any existence checks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recombination {
    /// Structurally legal: these two edges would replace the originals.
    Candidate {
        /// First replacement edge (canonical).
        f1: Edge,
        /// Second replacement edge (canonical).
        f2: Edge,
    },
    /// Structurally illegal before touching the graph.
    Rejected(RejectReason),
}

/// Compute the replacement pair for switching `e1` with `e2` under
/// `kind`, rejecting self-loops and useless switches.
///
/// Inputs are oriented `tail < head` as drawn from reduced adjacency
/// lists. The two input edges must be distinct *as edges* or the result
/// is `Rejected` (same-edge draws are always useless or loops).
pub fn recombine(e1: OrientedEdge, e2: OrientedEdge, kind: SwitchKind) -> Recombination {
    debug_assert!(
        e1.tail < e1.head && e2.tail < e2.head,
        "inputs must be oriented"
    );
    let (a, b) = match kind {
        SwitchKind::Cross => ((e1.tail, e2.head), (e2.tail, e1.head)),
        SwitchKind::Straight => ((e1.tail, e2.tail), (e1.head, e2.head)),
    };
    let Some(f1) = Edge::try_new(a.0, a.1) else {
        return Recombination::Rejected(RejectReason::SelfLoop);
    };
    let Some(f2) = Edge::try_new(b.0, b.1) else {
        return Recombination::Rejected(RejectReason::SelfLoop);
    };
    let o1 = e1.edge();
    let o2 = e2.edge();
    if (f1 == o1 && f2 == o2) || (f1 == o2 && f2 == o1) {
        return Recombination::Rejected(RejectReason::Useless);
    }
    // With loops and useless switches excluded, the replacements are
    // necessarily distinct from each other and from both originals: a
    // coincidence like f1 == o2 forces the useless case (Section 3.2).
    debug_assert!(f1 != f2);
    debug_assert!(f1 != o1 && f1 != o2 && f2 != o1 && f2 != o2);
    Recombination::Candidate { f1, f2 }
}

/// Draw the ½ straight/cross coin.
pub fn flip_kind<R: rand::Rng + ?Sized>(rng: &mut R) -> SwitchKind {
    if rng.gen_bool(0.5) {
        SwitchKind::Straight
    } else {
        SwitchKind::Cross
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(a: u64, b: u64) -> OrientedEdge {
        OrientedEdge { tail: a, head: b }
    }

    #[test]
    fn cross_swaps_heads() {
        let r = recombine(o(1, 2), o(3, 4), SwitchKind::Cross);
        assert_eq!(
            r,
            Recombination::Candidate {
                f1: Edge::new(1, 4),
                f2: Edge::new(3, 2),
            }
        );
    }

    #[test]
    fn straight_joins_tails_and_heads() {
        let r = recombine(o(1, 2), o(3, 4), SwitchKind::Straight);
        assert_eq!(
            r,
            Recombination::Candidate {
                f1: Edge::new(1, 3),
                f2: Edge::new(2, 4),
            }
        );
    }

    #[test]
    fn cross_with_shared_endpoint_makes_loop() {
        // e1 = (1,5), e2 = (2,1): wait, inputs oriented; use (1,5),(5,9):
        // cross gives (1,9) and (5,5) -> loop.
        let r = recombine(o(1, 5), o(5, 9), SwitchKind::Cross);
        assert_eq!(r, Recombination::Rejected(RejectReason::SelfLoop));
    }

    #[test]
    fn straight_with_shared_tail_makes_loop() {
        // (1,5) & (1,9) straight -> (1,1) loop.
        let r = recombine(o(1, 5), o(1, 9), SwitchKind::Straight);
        assert_eq!(r, Recombination::Rejected(RejectReason::SelfLoop));
    }

    #[test]
    fn cross_with_shared_tail_is_useless() {
        // (1,5) & (1,9) cross -> (1,9),(1,5): the original pair.
        let r = recombine(o(1, 5), o(1, 9), SwitchKind::Cross);
        assert_eq!(r, Recombination::Rejected(RejectReason::Useless));
    }

    #[test]
    fn cross_with_shared_head_is_useless() {
        // (1,9) & (5,9) cross -> (1,9),(5,9).
        let r = recombine(o(1, 9), o(5, 9), SwitchKind::Cross);
        assert_eq!(r, Recombination::Rejected(RejectReason::Useless));
    }

    #[test]
    fn straight_with_crossing_endpoints_is_useless() {
        // (1,5) & (5,9) straight -> (1,5),(5,9): original pair.
        let r = recombine(o(1, 5), o(5, 9), SwitchKind::Straight);
        assert_eq!(r, Recombination::Rejected(RejectReason::Useless));
    }

    #[test]
    fn same_edge_twice_never_yields_candidate() {
        for kind in [SwitchKind::Straight, SwitchKind::Cross] {
            let r = recombine(o(2, 7), o(2, 7), kind);
            assert!(
                matches!(r, Recombination::Rejected(_)),
                "same-edge {kind:?} must reject, got {r:?}"
            );
        }
    }

    #[test]
    fn degree_preservation() {
        // Whatever the recombination, each vertex keeps its incidence
        // count across {e1,e2} -> {f1,f2}.
        let cases = [(o(1, 2), o(3, 4)), (o(1, 9), o(2, 8)), (o(0, 3), o(2, 5))];
        for (e1, e2) in cases {
            for kind in [SwitchKind::Straight, SwitchKind::Cross] {
                if let Recombination::Candidate { f1, f2 } = recombine(e1, e2, kind) {
                    let mut before = vec![e1.tail, e1.head, e2.tail, e2.head];
                    let mut after = vec![f1.src(), f1.dst(), f2.src(), f2.dst()];
                    before.sort_unstable();
                    after.sort_unstable();
                    assert_eq!(before, after, "{e1:?} {e2:?} {kind:?}");
                }
            }
        }
    }

    #[test]
    fn coin_is_roughly_fair() {
        use rand::SeedableRng;
        let mut rng = rand_pcg::Pcg64::seed_from_u64(1);
        let straight = (0..10_000)
            .filter(|_| flip_kind(&mut rng) == SwitchKind::Straight)
            .count();
        assert!((4700..=5300).contains(&straight), "biased coin: {straight}");
    }
}
