//! Driver conformance: all three protocol drivers run the shared
//! `Transport`/`StepHarness` machinery, so their logical results must
//! line up.
//!
//! - The FIFO simulator and the DES execute the *same* global causal
//!   schedule (the DES only annotates it with virtual time), so for a
//!   fixed `(graph, t, config)` their [`ParallelOutcome`]s must be
//!   identical in every logical field.
//! - The threaded engine's schedule depends on OS interleaving, so it is
//!   held to the seed-independent invariants instead: degree sequence,
//!   simplicity, and total performed + forfeited operations.

use edge_switching::core::parallel::{
    parallel_curveball, parallel_edge_switch, process_backend_supported, simulate_curveball,
    simulate_parallel,
};
use edge_switching::core::trade::sequential_curveball;
use edge_switching::prelude::*;
use edge_switching::scalesim::{des_curveball, des_parallel};
use std::io::{BufRead, BufReader};
use std::process::Stdio;
use std::time::{Duration, Instant};

fn clustered_graph(seed: u64) -> Graph {
    let mut rng = root_rng(seed);
    contact_network(
        ContactParams {
            n: 1000,
            community_size: 40,
            intra_degree: 12.0,
            inter_degree: 3.0,
        },
        &mut rng,
    )
}

fn config(p: usize) -> ParallelConfig {
    ParallelConfig::new(p)
        .with_scheme(SchemeKind::HashUniversal)
        .with_step_size(StepSize::FractionOfT(10))
        .with_seed(4242)
}

#[test]
fn fifo_and_des_produce_identical_logical_outcomes() {
    let g = clustered_graph(31);
    let t = 4_000;
    let cfg = config(12);

    let fifo = simulate_parallel(&g, t, &cfg);
    let (des, report) = des_parallel(&g, t, &cfg, &CostModel::default());

    // Same schedule → same graph, same counters, same telemetry.
    assert!(fifo.graph.same_edge_set(&des.graph));
    assert_eq!(fifo.steps, des.steps);
    assert_eq!(fifo.per_rank, des.per_rank);
    assert_eq!(fifo.final_edges, des.final_edges);
    assert_eq!(fifo.initial_edges, des.initial_edges);
    assert_eq!(fifo.performed(), des.performed());
    assert_eq!(fifo.forfeited(), des.forfeited());
    assert_eq!(fifo.visit_rate(), des.visit_rate());
    assert_eq!(fifo.telemetry.len(), des.telemetry.len());
    for (a, b) in fifo.telemetry.iter().zip(des.telemetry.iter()) {
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.started, b.started);
        assert_eq!(a.performed, b.performed);
        assert_eq!(a.forfeited, b.forfeited);
        assert_eq!(a.served, b.served);
        assert_eq!(a.blocked, b.blocked);
        assert_eq!(a.logical_msgs, b.logical_msgs);
    }
    // The DES layers timing on top without changing message counts.
    assert_eq!(
        fifo.comm.iter().map(|c| c.packets_sent).sum::<u64>(),
        report.packets
    );
    assert!(report.runtime_ns > 0.0);
}

/// FIFO≡DES is the correctness oracle for the pipelined protocol: it
/// must hold at every window depth, not just the stop-and-wait special
/// case, and the window bound itself must be visible in the telemetry.
#[test]
fn fifo_des_conformance_holds_across_windows() {
    let g = clustered_graph(34);
    let t = 2_000;
    let mut peaks = Vec::new();
    for window in [1usize, 4, 16] {
        let cfg = config(8).with_window(window);
        let fifo = simulate_parallel(&g, t, &cfg);
        let (des, _) = des_parallel(&g, t, &cfg, &CostModel::default());
        assert!(
            fifo.graph.same_edge_set(&des.graph),
            "FIFO and DES diverged at window {window}"
        );
        assert_eq!(
            fifo.per_rank, des.per_rank,
            "stats diverged at window {window}"
        );
        assert_eq!(fifo.final_edges, des.final_edges);
        assert_eq!(fifo.performed(), des.performed());
        assert_eq!(fifo.window_peak(), des.window_peak());
        assert_eq!(fifo.packet_total(), des.packet_total());
        assert_eq!(fifo.parked_events(), des.parked_events());
        // Occupancy never exceeds the configured bound, and the books
        // still balance however deep the pipeline runs.
        assert!(fifo.window_peak() <= window as u64);
        assert_eq!(fifo.performed() + fifo.forfeited(), t);
        assert_eq!(fifo.graph.degree_sequence(), g.degree_sequence());
        peaks.push(fifo.window_peak());
    }
    // window=1 is stop-and-wait by construction; deeper windows must
    // actually overlap conversations on this workload.
    assert_eq!(peaks[0], 1);
    assert!(peaks[1] > 1, "window 4 never pipelined");
    assert!(peaks[2] >= peaks[1]);
}

#[test]
fn threaded_engine_matches_schedule_independent_invariants() {
    let g = clustered_graph(32);
    let t = 3_000;
    run_threaded_invariants(&g, t, &config(6).with_window(1));
    run_threaded_invariants(&g, t, &config(6).with_window(DEFAULT_WINDOW));
}

fn run_threaded_invariants(g: &Graph, t: u64, cfg: &ParallelConfig) {
    let sim = simulate_parallel(g, t, cfg);
    let eng = parallel_edge_switch(g, t, cfg);

    for out in [&sim, &eng] {
        out.graph.check_invariants().unwrap();
        assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
        assert_eq!(out.performed() + out.forfeited(), t);
        assert_eq!(out.steps, sim.steps);
        assert_eq!(out.initial_edges, sim.initial_edges);
        // Telemetry totals account for every operation and completion.
        assert_eq!(out.telemetry.len(), out.steps as usize);
        assert_eq!(out.telemetry.iter().map(|s| s.ops).sum::<u64>(), t);
        assert_eq!(
            out.telemetry.iter().map(|s| s.performed).sum::<u64>(),
            out.performed()
        );
        assert_eq!(
            out.telemetry.iter().map(|s| s.forfeited).sum::<u64>(),
            out.forfeited()
        );
        // Every started attempt terminates in exactly one Done or Abort
        // (forfeits via an emptied partition never start).
        let aborts: u64 = out.per_rank.iter().map(|s| s.aborts()).sum();
        assert_eq!(
            out.telemetry.iter().map(|s| s.started).sum::<u64>(),
            out.performed() + aborts
        );
    }

    // The engine's per-variant counters agree between the telemetry
    // layer and the mpilite per-kind counters (protocol messages only;
    // the comm stats additionally count collective traffic).
    let eng_msgs = eng.logical_msg_totals();
    for kind in MsgKind::ALL {
        if kind == MsgKind::Coll {
            continue;
        }
        let from_comm: u64 = eng
            .comm
            .iter()
            .map(|c| c.logical_by_kind[kind as usize])
            .sum();
        assert_eq!(
            eng_msgs.get(kind),
            from_comm,
            "kind {:?} disagrees between telemetry and comm stats",
            kind
        );
    }
}

/// Everything logical must agree between two runs of the same seeded
/// configuration that differ only in fast-path setting or driver; the
/// fast-path attribution counters are excluded (an off run reports
/// zero where an on run attributes). DES virtual-time fields are also
/// excluded: skipping self-deliveries removes their per-message
/// charges without touching the causal schedule.
fn assert_fastpath_identical(on: &ParallelOutcome, off: &ParallelOutcome, ctx: &str) {
    assert!(on.graph.same_edge_set(&off.graph), "graph diverged: {ctx}");
    assert_eq!(on.steps, off.steps, "steps diverged: {ctx}");
    assert_eq!(on.final_edges, off.final_edges, "edges diverged: {ctx}");
    assert_eq!(on.initial_edges, off.initial_edges);
    assert_eq!(on.visit_rate(), off.visit_rate(), "visits diverged: {ctx}");
    let strip = |s: &RankStats| {
        let mut s = *s;
        s.performed_fastpath = 0;
        s
    };
    assert_eq!(
        on.per_rank.iter().map(strip).collect::<Vec<_>>(),
        off.per_rank.iter().map(strip).collect::<Vec<_>>(),
        "stats diverged: {ctx}"
    );
    assert_eq!(on.telemetry.len(), off.telemetry.len());
    for (a, b) in on.telemetry.iter().zip(off.telemetry.iter()) {
        assert_eq!(a.ops, b.ops, "ops diverged: {ctx}");
        assert_eq!(a.started, b.started, "started diverged: {ctx}");
        assert_eq!(a.performed, b.performed, "performed diverged: {ctx}");
        assert_eq!(a.forfeited, b.forfeited, "forfeited diverged: {ctx}");
        assert_eq!(a.served, b.served, "served diverged: {ctx}");
        assert_eq!(a.blocked, b.blocked, "blocked diverged: {ctx}");
        assert_eq!(a.parked, b.parked, "parked diverged: {ctx}");
        assert_eq!(a.window_peak, b.window_peak, "peak diverged: {ctx}");
        assert_eq!(a.packets, b.packets, "packets diverged: {ctx}");
        assert_eq!(a.logical_msgs, b.logical_msgs, "messages diverged: {ctx}");
    }
}

/// The local fast path is a pure execution-strategy change: with it on
/// (the default) or off, seeded runs are bit-identical in every logical
/// field — across simulators, processor counts and window depths.
#[test]
fn local_fastpath_toggle_is_bit_identical_across_simulators() {
    let g = clustered_graph(35);
    let t = 2_000;
    for p in [1usize, 2, 4] {
        for window in [1usize, 16] {
            let on = config(p).with_window(window);
            let off = on.clone().with_local_fastpath(false);
            let fifo_on = simulate_parallel(&g, t, &on);
            let fifo_off = simulate_parallel(&g, t, &off);
            assert_fastpath_identical(&fifo_on, &fifo_off, &format!("FIFO p={p} window={window}"));
            let (des_on, _) = des_parallel(&g, t, &on, &CostModel::default());
            let (des_off, _) = des_parallel(&g, t, &off, &CostModel::default());
            assert_fastpath_identical(&des_on, &des_off, &format!("DES p={p} window={window}"));
            // Disabled runs attribute nothing to the fast path.
            for off in [&fifo_off, &des_off] {
                assert!(
                    off.per_rank.iter().all(|s| s.performed_fastpath == 0),
                    "disabled fast path still attributed switches at p={p}"
                );
                assert!(off.telemetry.iter().all(|s| s.local_fastpath == 0));
            }
            // The toggle also commutes with the FIFO≡DES oracle — with
            // both on, even the attribution counters agree exactly.
            assert_eq!(
                fifo_on.per_rank, des_on.per_rank,
                "FIFO-on vs DES-on stats diverged at p={p} window={window}"
            );
            // The fast path actually fires, and the telemetry column sums
            // to the per-rank attribution.
            let fp: u64 = fifo_on.per_rank.iter().map(|s| s.performed_fastpath).sum();
            assert!(fp > 0, "fast path never fired at p={p} window={window}");
            assert_eq!(
                fp,
                fifo_on
                    .telemetry
                    .iter()
                    .map(|s| s.local_fastpath)
                    .sum::<u64>()
            );
            if p == 1 {
                // One partition owns everything: every switch is local
                // and every replacement endpoint resolves locally.
                assert_eq!(fp, fifo_on.performed());
            }
        }
    }
}

/// At `p = 1` the threaded engine has no cross-rank interleaving, so the
/// toggle must be bit-identical there too (and the engine must agree
/// with the simulator outright). At higher `p` the schedule is
/// OS-dependent and the fast path is held to accounting invariants.
#[test]
fn local_fastpath_toggle_on_the_threaded_engine() {
    let g = clustered_graph(36);
    let t = 2_000;
    for window in [1usize, 16] {
        let on = config(1).with_window(window);
        let off = on.clone().with_local_fastpath(false);
        let eng_on = parallel_edge_switch(&g, t, &on);
        let eng_off = parallel_edge_switch(&g, t, &off);
        assert_fastpath_identical(&eng_on, &eng_off, &format!("threaded p=1 window={window}"));
        assert!(eng_off.per_rank.iter().all(|s| s.performed_fastpath == 0));
        let fifo = simulate_parallel(&g, t, &on);
        assert!(
            eng_on.graph.same_edge_set(&fifo.graph),
            "threaded p=1 diverged from the simulator at window {window}"
        );
        assert_eq!(eng_on.per_rank, fifo.per_rank);
    }
    for p in [2usize, 4] {
        let out = parallel_edge_switch(&g, t, &config(p));
        out.graph.check_invariants().unwrap();
        assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
        assert_eq!(out.performed() + out.forfeited(), t);
        let fp: u64 = out.per_rank.iter().map(|s| s.performed_fastpath).sum();
        let fp_tel: u64 = out.telemetry.iter().map(|s| s.local_fastpath).sum();
        assert_eq!(
            fp, fp_tel,
            "telemetry and stats disagree on fast-path count"
        );
        for s in &out.per_rank {
            assert!(
                s.performed_fastpath <= s.performed_local,
                "fast-path switches are a subset of local switches"
            );
        }
        assert!(
            fp > 0,
            "fast path never fired on the threaded engine at p={p}"
        );
    }
}

/// FIFO≡DES must hold on the *speculative* schedule too: batching
/// changes which switches conflict (a whole window is applied before
/// any verdict arrives), but both simulators must still walk the same
/// causal schedule at every batch depth × window depth.
#[test]
fn fifo_des_conformance_holds_across_spec_batches() {
    let g = clustered_graph(37);
    let t = 2_000;
    for batch in [1usize, 4, 16] {
        for window in [1usize, 16] {
            let cfg = config(8).with_window(window).with_spec_batch(batch);
            let fifo = simulate_parallel(&g, t, &cfg);
            let (des, _) = des_parallel(&g, t, &cfg, &CostModel::default());
            assert!(
                fifo.graph.same_edge_set(&des.graph),
                "FIFO and DES diverged at batch={batch} window={window}"
            );
            assert_eq!(
                fifo.per_rank, des.per_rank,
                "stats diverged at batch={batch} window={window}"
            );
            assert_eq!(fifo.final_edges, des.final_edges);
            assert_eq!(fifo.performed(), des.performed());
            assert_eq!(fifo.window_peak(), des.window_peak());
            assert_eq!(fifo.packet_total(), des.packet_total());
            // The books balance on the speculative schedule too: every
            // operation either performed or forfeited, degrees intact,
            // and speculative occupancy stays inside the window bound.
            assert_eq!(fifo.performed() + fifo.forfeited(), t);
            assert_eq!(fifo.graph.degree_sequence(), g.degree_sequence());
            assert!(fifo.window_peak() <= window as u64);
            let committed: u64 = fifo.per_rank.iter().map(|s| s.spec_committed).sum();
            if batch == 1 {
                // Speculation off: the counters must stay silent.
                assert_eq!(committed, 0, "spec committed with batching off");
                assert!(fifo.per_rank.iter().all(|s| s.spec_rolled_back == 0));
            } else if window >= batch {
                // With room to breathe, speculation actually engages on
                // this hash-partitioned workload.
                assert!(
                    committed > 0,
                    "speculation never committed at batch={batch} window={window}"
                );
            }
        }
    }
}

/// `spec_batch = 1` (the default) must be *bit-identical* to the
/// pre-batching protocol: same graph, same stats, same telemetry, same
/// packets — the golden behaviour every prior test pinned.
#[test]
fn spec_batch_off_is_bit_identical_to_golden_path() {
    let g = clustered_graph(38);
    let t = 2_000;
    for p in [1usize, 4, 8] {
        for window in [1usize, 16] {
            let golden_cfg = config(p).with_window(window);
            let off_cfg = golden_cfg.clone().with_spec_batch(1);
            let golden = simulate_parallel(&g, t, &golden_cfg);
            let off = simulate_parallel(&g, t, &off_cfg);
            assert!(
                golden.graph.same_edge_set(&off.graph),
                "spec_batch=1 changed the graph at p={p} window={window}"
            );
            assert_eq!(
                golden.per_rank, off.per_rank,
                "spec_batch=1 changed rank stats at p={p} window={window}"
            );
            assert_eq!(golden.final_edges, off.final_edges);
            assert_eq!(golden.telemetry.len(), off.telemetry.len());
            for (a, b) in golden.telemetry.iter().zip(off.telemetry.iter()) {
                assert_eq!(a.ops, b.ops);
                assert_eq!(a.started, b.started);
                assert_eq!(a.performed, b.performed);
                assert_eq!(a.forfeited, b.forfeited);
                assert_eq!(a.served, b.served);
                assert_eq!(a.blocked, b.blocked);
                assert_eq!(a.parked, b.parked);
                assert_eq!(a.window_peak, b.window_peak);
                assert_eq!(a.packets, b.packets);
                assert_eq!(a.logical_msgs, b.logical_msgs);
                assert_eq!(a.spec_committed, b.spec_committed);
                assert_eq!(a.spec_rolled_back, b.spec_rolled_back);
            }
        }
    }
}

/// The threaded engine under speculation is held to the same
/// schedule-independent invariants as the per-switch path, and at
/// `p = 1` it must agree with the simulator exactly.
#[test]
fn threaded_engine_invariants_hold_under_speculation() {
    let g = clustered_graph(39);
    let t = 2_000;
    // p=1: fully deterministic — engine ≡ simulator, bit for bit.
    let cfg1 = config(1).with_spec_batch(8);
    let eng = parallel_edge_switch(&g, t, &cfg1);
    let fifo = simulate_parallel(&g, t, &cfg1);
    assert!(
        eng.graph.same_edge_set(&fifo.graph),
        "threaded p=1 diverged from the simulator under speculation"
    );
    assert_eq!(eng.per_rank, fifo.per_rank);
    // At p=1 everything is local, so speculation never needs a partner
    // verdict: no rollbacks, no spec commits — just the tight loop.
    assert!(eng.per_rank.iter().all(|s| s.spec_rolled_back == 0));

    for p in [2usize, 4] {
        let out = parallel_edge_switch(&g, t, &config(p).with_spec_batch(8));
        out.graph.check_invariants().unwrap();
        assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
        assert_eq!(out.performed() + out.forfeited(), t);
        // Speculative accounting: commits count as performed local
        // switches, and every started attempt still terminates exactly
        // once (a rollback is an abort, a commit is a Done).
        let aborts: u64 = out.per_rank.iter().map(|s| s.aborts()).sum();
        assert_eq!(
            out.telemetry.iter().map(|s| s.started).sum::<u64>(),
            out.performed() + aborts
        );
        for s in &out.per_rank {
            assert!(s.spec_committed <= s.performed_local);
            assert!(s.spec_rolled_back <= s.aborts());
        }
    }
}

/// Process-backend re-entry hook, not a test: rank children spawned by
/// the process-backend tests below are this same test binary re-executed
/// with argv selecting exactly this `#[ignore]`d name. With the shm
/// environment set, `child_entry_from_env` runs the rank loop and exits
/// before libtest ever sees the process; without it this is a no-op.
#[test]
#[ignore = "process-backend child entry point, not a test"]
fn shm_child_entry() {
    child_entry_from_env();
}

/// At `p = 1` the process engine, like the threaded engine, has no
/// cross-rank interleaving: the child rank must replay exactly the FIFO
/// simulator's schedule, bit for bit, across window depths and with
/// speculation on — despite crossing a process boundary twice (boot blob
/// out, result blob back).
#[test]
fn process_engine_p1_is_bit_identical_to_simulator() {
    if !process_backend_supported() {
        eprintln!("process backend unsupported on this platform; skipping");
        return;
    }
    let g = clustered_graph(41);
    let t = 2_000;
    for (window, batch) in [(1usize, 1usize), (16, 1), (16, 8)] {
        let cfg = config(1).with_window(window).with_spec_batch(batch);
        let fifo = simulate_parallel(&g, t, &cfg);
        let proc = parallel_edge_switch(&g, t, &cfg.clone().with_backend(Backend::Process));
        let ctx = format!("process p=1 window={window} batch={batch}");
        assert!(
            proc.graph.same_edge_set(&fifo.graph),
            "graph diverged: {ctx}"
        );
        assert_eq!(proc.steps, fifo.steps, "steps diverged: {ctx}");
        assert_eq!(proc.per_rank, fifo.per_rank, "stats diverged: {ctx}");
        assert_eq!(proc.final_edges, fifo.final_edges, "edges diverged: {ctx}");
        assert_eq!(proc.initial_edges, fifo.initial_edges);
        assert_eq!(
            proc.visit_rate(),
            fifo.visit_rate(),
            "visits diverged: {ctx}"
        );
        assert_eq!(proc.telemetry.len(), fifo.telemetry.len());
        for (a, b) in proc.telemetry.iter().zip(fifo.telemetry.iter()) {
            assert_eq!(a.ops, b.ops, "ops diverged: {ctx}");
            assert_eq!(a.started, b.started, "started diverged: {ctx}");
            assert_eq!(a.performed, b.performed, "performed diverged: {ctx}");
            assert_eq!(a.forfeited, b.forfeited, "forfeited diverged: {ctx}");
            assert_eq!(a.served, b.served, "served diverged: {ctx}");
            assert_eq!(a.blocked, b.blocked, "blocked diverged: {ctx}");
            assert_eq!(a.window_peak, b.window_peak, "peak diverged: {ctx}");
            assert_eq!(a.local_fastpath, b.local_fastpath);
            assert_eq!(a.spec_committed, b.spec_committed);
            assert_eq!(a.spec_rolled_back, b.spec_rolled_back);
            assert_eq!(a.packets, b.packets, "packets diverged: {ctx}");
            assert_eq!(a.logical_msgs, b.logical_msgs, "messages diverged: {ctx}");
        }
    }
}

/// At `p > 1` the process engine's schedule depends on OS interleaving
/// (like the threaded engine's), so the two drivers are compared on
/// schedule-independent logical outcomes across processor counts ×
/// window depths × speculative batch depths: the permanent invariants
/// hold for both, and everything determined by `(graph, t, config)`
/// alone — step count, step sizes, initial edge count — agrees exactly.
#[test]
fn process_engine_matches_threaded_logical_outcomes() {
    if !process_backend_supported() {
        eprintln!("process backend unsupported on this platform; skipping");
        return;
    }
    let g = clustered_graph(42);
    let t = 1_500;
    for p in [2usize, 4] {
        for window in [1usize, 16] {
            for batch in [1usize, 8] {
                let cfg = config(p).with_window(window).with_spec_batch(batch);
                let thr = parallel_edge_switch(&g, t, &cfg);
                let proc = parallel_edge_switch(&g, t, &cfg.clone().with_backend(Backend::Process));
                let ctx = format!("p={p} window={window} batch={batch}");
                for out in [&thr, &proc] {
                    out.graph.check_invariants().unwrap();
                    assert_eq!(out.graph.degree_sequence(), g.degree_sequence(), "{ctx}");
                    assert_eq!(out.performed() + out.forfeited(), t, "{ctx}");
                    assert_eq!(out.telemetry.len(), out.steps as usize, "{ctx}");
                    assert_eq!(out.telemetry.iter().map(|s| s.ops).sum::<u64>(), t);
                    assert_eq!(
                        out.telemetry.iter().map(|s| s.performed).sum::<u64>(),
                        out.performed()
                    );
                    let aborts: u64 = out.per_rank.iter().map(|s| s.aborts()).sum();
                    assert_eq!(
                        out.telemetry.iter().map(|s| s.started).sum::<u64>(),
                        out.performed() + aborts,
                        "{ctx}"
                    );
                    // Per-kind message counters agree between the
                    // telemetry layer and the transport's own books.
                    let msgs = out.logical_msg_totals();
                    for kind in MsgKind::ALL {
                        if kind == MsgKind::Coll {
                            continue;
                        }
                        let from_comm: u64 = out
                            .comm
                            .iter()
                            .map(|c| c.logical_by_kind[kind as usize])
                            .sum();
                        assert_eq!(msgs.get(kind), from_comm, "kind {kind:?}: {ctx}");
                    }
                }
                // Everything fixed by `(graph, t, config)` alone is
                // identical across the two transports.
                assert_eq!(proc.steps, thr.steps, "steps diverged: {ctx}");
                assert_eq!(proc.initial_edges, thr.initial_edges, "{ctx}");
                assert_eq!(proc.per_rank.len(), thr.per_rank.len());
                for (a, b) in proc.telemetry.iter().zip(thr.telemetry.iter()) {
                    assert_eq!(a.ops, b.ops, "step sizes diverged: {ctx}");
                }
            }
        }
    }
}

/// Orphan-safety driver, not a test: launches a process-backend run far
/// too long to finish, with child-pid announcements on, so the kill test
/// below can murder this driver mid-run and watch the rank children die
/// with it (PDEATHSIG plus the liveness word in the shm header).
#[test]
#[ignore = "orphan-safety driver for killing_the_launcher_reaps_rank_children"]
fn shm_orphan_driver() {
    if !process_backend_supported() {
        return;
    }
    let g = clustered_graph(43);
    let cfg = config(2)
        .with_backend(Backend::Process)
        .with_proc_opts(ProcOpts {
            announce_children: true,
            ..ProcOpts::default()
        });
    // ~10^9 switches: minutes of work — the parent kills us long before.
    parallel_edge_switch(&g, 1_000_000_000, &cfg);
}

/// Read the state letter from `/proc/<pid>/stat` — `None` once the pid is
/// gone. The state field follows the parenthesised comm, which may itself
/// contain anything, so parse from the *last* `)`.
fn proc_state(pid: u32) -> Option<char> {
    let stat = std::fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    stat.rsplit(')').next()?.trim().chars().next()
}

/// Kill-parent-mid-run: SIGKILL the launcher while its rank children are
/// grinding, then assert the children disappear on their own. SIGKILL
/// means no destructor runs in the launcher — only the PDEATHSIG set in
/// `pre_exec` (and the shm liveness word polled on park) can reap them.
#[test]
fn killing_the_launcher_reaps_rank_children() {
    if !process_backend_supported() {
        eprintln!("process backend unsupported on this platform; skipping");
        return;
    }
    let exe = std::env::current_exe().expect("own test binary");
    let mut driver = std::process::Command::new(exe)
        .args(["shm_orphan_driver", "--include-ignored", "--nocapture"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn orphan driver");
    // The launcher announces each rank child as `shm-child-pid: <pid>`.
    let stdout = driver.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout);
    let mut pids: Vec<u32> = Vec::new();
    let mut line = String::new();
    while pids.len() < 2 {
        line.clear();
        let n = lines.read_line(&mut line).expect("read driver stdout");
        assert!(n > 0, "driver exited before announcing both rank children");
        // Not anchored: libtest's `test shm_orphan_driver ...` progress
        // prefix lands on the same line as the first announcement.
        if let Some(at) = line.find("shm-child-pid: ") {
            let rest = line[at + "shm-child-pid: ".len()..].trim();
            pids.push(rest.parse().expect("pid"));
        }
    }
    for &pid in &pids {
        assert!(proc_state(pid).is_some(), "announced child {pid} not alive");
    }
    driver.kill().expect("kill driver");
    driver.wait().expect("reap driver");
    // Children must vanish without anyone waiting on them. A zombie
    // counts as dead: it stopped running and awaits only init's reap.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut remaining = pids;
    while !remaining.is_empty() {
        remaining.retain(|&pid| !matches!(proc_state(pid), None | Some('Z')));
        if remaining.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "rank children survived the launcher's death: {remaining:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

// ---------------------------------------------------------------------
// Curveball trade conformance
// ---------------------------------------------------------------------
//
// The trade protocol is *stronger* than the switch protocol: its
// counting-based forwarding makes every driver — sequential engine,
// FIFO simulator, DES, threaded engine — bit-identical at every
// processor count, not just schedule-equivalent. These tests pin that.

/// Collect a tracker's surviving (unvisited) keys in sorted order so two
/// drivers' visit *sets* (not just rates) can be compared exactly.
fn remaining_sorted(t: &VisitTracker) -> Vec<u64> {
    let mut keys: Vec<u64> = t.remaining_keys().collect();
    keys.sort_unstable();
    keys
}

/// Sequential ≡ simulated at every p: the parallel trade protocol
/// replays the sequential engine's trades exactly (same RNG stream per
/// trade, same neighbor multisets), so graph, visit set, and work
/// counters are bit-identical — the Curveball analogue of FIFO≡DES.
#[test]
fn curveball_sequential_and_simulator_are_bit_identical() {
    let g = clustered_graph(51);
    let budget = TradeBudget::Trades(1_000);
    let mut seq_graph = g.clone();
    let seq = sequential_curveball(&mut seq_graph, budget, 4242);
    assert!(seq.trades >= 1_000, "budget not met sequentially");

    for p in [1usize, 2, 4] {
        let sim = simulate_curveball(&g, budget, &config(p));
        let ctx = format!("curveball p={p}");
        assert!(
            sim.graph.same_edge_set(&seq_graph),
            "graph diverged from sequential: {ctx}"
        );
        assert_eq!(
            sim.tracker.visited_count(),
            seq.tracker.visited_count(),
            "visit counts diverged: {ctx}"
        );
        assert_eq!(
            remaining_sorted(&sim.tracker),
            remaining_sorted(&seq.tracker),
            "visit sets diverged: {ctx}"
        );
        assert_eq!(sim.performed(), seq.trades, "trade counts diverged: {ctx}");
        assert_eq!(sim.steps, seq.passes, "pass counts diverged: {ctx}");
        assert_eq!(
            sim.telemetry.iter().map(|s| s.trades).sum::<u64>(),
            seq.trades,
            "telemetry trades diverged: {ctx}"
        );
        assert_eq!(
            sim.telemetry.iter().map(|s| s.neighbors_moved).sum::<u64>(),
            seq.neighbors_moved,
            "neighbors_moved diverged: {ctx}"
        );
        assert_eq!(sim.forfeited(), 0, "trades never forfeit: {ctx}");
    }
}

/// FIFO ≡ DES for parallel trades at p ∈ {1, 2, 4}: the DES executes the
/// same causal schedule on virtual clocks, so every logical field must
/// agree — and the DES report's packet total must match the comm books.
#[test]
fn curveball_fifo_and_des_produce_identical_outcomes() {
    let g = clustered_graph(52);
    let budget = TradeBudget::Trades(1_200);
    for p in [1usize, 2, 4] {
        let cfg = config(p);
        let fifo = simulate_curveball(&g, budget, &cfg);
        let (des, report) = des_curveball(&g, budget, &cfg, &CostModel::default());
        let ctx = format!("curveball FIFO vs DES p={p}");
        assert!(fifo.graph.same_edge_set(&des.graph), "graph: {ctx}");
        assert_eq!(fifo.steps, des.steps, "steps: {ctx}");
        assert_eq!(fifo.per_rank, des.per_rank, "stats: {ctx}");
        assert_eq!(fifo.final_edges, des.final_edges, "edges: {ctx}");
        assert_eq!(fifo.initial_edges, des.initial_edges, "{ctx}");
        assert_eq!(fifo.visit_rate(), des.visit_rate(), "visits: {ctx}");
        assert_eq!(
            remaining_sorted(&fifo.tracker),
            remaining_sorted(&des.tracker),
            "visit sets: {ctx}"
        );
        assert_eq!(fifo.telemetry.len(), des.telemetry.len());
        for (a, b) in fifo.telemetry.iter().zip(des.telemetry.iter()) {
            assert_eq!(a.ops, b.ops, "ops: {ctx}");
            assert_eq!(a.trades, b.trades, "trades: {ctx}");
            assert_eq!(a.neighbors_moved, b.neighbors_moved, "moved: {ctx}");
            assert_eq!(a.packets, b.packets, "packets: {ctx}");
            assert_eq!(a.logical_msgs, b.logical_msgs, "messages: {ctx}");
        }
        assert_eq!(
            fifo.comm.iter().map(|c| c.packets_sent).sum::<u64>(),
            report.packets,
            "{ctx}"
        );
    }
}

/// The threaded trade engine is bit-identical to the simulator at every
/// p (not just p = 1): counting-based firing makes trade outcomes
/// independent of OS message interleaving. Logical message totals also
/// agree up to the threaded driver's explicit EndOfStep drain markers.
#[test]
fn curveball_threaded_engine_is_bit_identical_to_simulator() {
    let g = clustered_graph(53);
    let budget = TradeBudget::Trades(1_000);
    for p in [1usize, 2, 4] {
        let cfg = config(p);
        let fifo = simulate_curveball(&g, budget, &cfg);
        let eng = parallel_curveball(&g, budget, &cfg);
        let ctx = format!("curveball threaded p={p}");
        assert!(eng.graph.same_edge_set(&fifo.graph), "graph: {ctx}");
        assert_eq!(eng.steps, fifo.steps, "steps: {ctx}");
        assert_eq!(eng.per_rank, fifo.per_rank, "stats: {ctx}");
        assert_eq!(eng.final_edges, fifo.final_edges, "edges: {ctx}");
        assert_eq!(eng.initial_edges, fifo.initial_edges, "{ctx}");
        assert_eq!(
            remaining_sorted(&eng.tracker),
            remaining_sorted(&fifo.tracker),
            "visit sets: {ctx}"
        );
        assert_eq!(eng.telemetry.len(), fifo.telemetry.len());
        let eng_msgs = eng.logical_msg_totals();
        let fifo_msgs = fifo.logical_msg_totals();
        // The simulators deliver in lockstep and never need the explicit
        // end-of-pass marker; every other kind must match exactly.
        assert_eq!(fifo_msgs.get(MsgKind::EndOfStep), 0, "{ctx}");
        for kind in MsgKind::ALL {
            if kind == MsgKind::EndOfStep {
                continue;
            }
            assert_eq!(
                eng_msgs.get(kind),
                fifo_msgs.get(kind),
                "kind {kind:?}: {ctx}"
            );
        }
        for (a, b) in eng.telemetry.iter().zip(fifo.telemetry.iter()) {
            assert_eq!(a.ops, b.ops, "ops: {ctx}");
            assert_eq!(a.trades, b.trades, "trades: {ctx}");
            assert_eq!(a.neighbors_moved, b.neighbors_moved, "moved: {ctx}");
        }
    }
}

/// Schedule-independent Curveball invariants: after N passes the degree
/// sequence is exactly preserved, the graph stays simple, runs are
/// deterministic per seed, and distinct seeds actually diverge.
#[test]
fn curveball_preserves_degrees_and_is_seed_deterministic() {
    let g = clustered_graph(54);
    let budget = TradeBudget::Trades(2_000);
    let out = simulate_curveball(&g, budget, &config(4));
    out.graph.check_invariants().unwrap();
    assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
    assert!(
        !out.graph.same_edge_set(&g),
        "four passes left the graph untouched"
    );

    let again = simulate_curveball(&g, budget, &config(4));
    assert!(again.graph.same_edge_set(&out.graph), "same seed diverged");
    assert_eq!(again.per_rank, out.per_rank);

    let other = simulate_curveball(&g, budget, &config(4).with_seed(777));
    other.graph.check_invariants().unwrap();
    assert_eq!(other.graph.degree_sequence(), g.degree_sequence());
    assert!(
        !other.graph.same_edge_set(&out.graph),
        "different seeds produced the same graph"
    );
}

/// A visit-rate budget terminates at the first pass boundary at or past
/// the target, identically across sequential and parallel drivers.
#[test]
fn curveball_visit_rate_budget_agrees_across_drivers() {
    let g = clustered_graph(55);
    let budget = TradeBudget::VisitRate(0.6);
    let mut seq_graph = g.clone();
    let seq = sequential_curveball(&mut seq_graph, budget, 4242);
    assert!(seq.visit_rate() >= 0.6, "sequential missed the target");
    for p in [1usize, 4] {
        let sim = simulate_curveball(&g, budget, &config(p));
        assert!(sim.visit_rate() >= 0.6, "p={p} missed the target");
        assert!(sim.graph.same_edge_set(&seq_graph), "p={p} graph diverged");
        assert_eq!(sim.steps, seq.passes, "p={p} pass count diverged");
        assert_eq!(
            sim.tracker.visited_count(),
            seq.tracker.visited_count(),
            "p={p} visit counts diverged"
        );
    }
}

/// The `Run` builder dispatches `Randomizer::Curveball` to the trade
/// engines with the same budget mapping as the free functions.
#[test]
fn run_builder_dispatches_curveball() {
    let g = clustered_graph(56);
    let out = Run::parallel(4)
        .randomizer(Randomizer::Curveball)
        .switches(1_000)
        .seed(4242)
        .scheme(SchemeKind::HashUniversal)
        .execute(&g);
    let free = simulate_curveball(
        &g,
        TradeBudget::Trades(1_000),
        &ParallelConfig::new(4)
            .with_scheme(SchemeKind::HashUniversal)
            .with_seed(4242),
    );
    assert!(out.graph().same_edge_set(&free.graph));
    assert_eq!(out.performed(), free.performed());
    assert_eq!(out.graph().degree_sequence(), g.degree_sequence());

    let seq = Run::sequential()
        .randomizer(Randomizer::Curveball)
        .visit_rate(0.5)
        .seed(7)
        .execute(&g);
    assert!(seq.visit_rate() >= 0.5);
    assert_eq!(seq.graph().degree_sequence(), g.degree_sequence());
}

#[test]
fn fifo_des_conformance_holds_across_schemes_and_policies() {
    let g = clustered_graph(33);
    let t = 1_500;
    for scheme in [SchemeKind::Consecutive, SchemeKind::HashUniversal] {
        let cfg = ParallelConfig::new(8)
            .with_scheme(scheme)
            .with_step_size(StepSize::FractionOfT(5))
            .with_seed(77);
        let fifo = simulate_parallel(&g, t, &cfg);
        let (des, _) = des_parallel(&g, t, &cfg, &CostModel::default());
        assert!(
            fifo.graph.same_edge_set(&des.graph),
            "FIFO and DES diverged under {scheme:?}"
        );
        assert_eq!(fifo.per_rank, des.per_rank);
    }
}
