//! Observability conformance: probes may watch, never steer.
//!
//! The obs layer records spans, round trips and gauges, but draws no
//! randomness and changes no control flow, so a run observed with
//! [`ObsSpec::Spans`] must be *bit-identical* to the same seeded run
//! with probes off — on every driver and at every pipelining window.
//! The second half pins the [`RunReport`] JSON schema that `repro
//! trace` exports.

use edge_switching::core::parallel::{
    parallel_curveball, parallel_edge_switch, simulate_curveball, simulate_parallel,
};
use edge_switching::prelude::*;

fn graph(seed: u64) -> Graph {
    let mut rng = root_rng(seed);
    contact_network(
        ContactParams {
            n: 800,
            community_size: 40,
            intra_degree: 10.0,
            inter_degree: 3.0,
        },
        &mut rng,
    )
}

fn config(p: usize, window: usize) -> ParallelConfig {
    ParallelConfig::new(p)
        .with_scheme(SchemeKind::HashUniversal)
        .with_step_size(StepSize::FractionOfT(8))
        .with_seed(909)
        .with_window(window)
}

/// Assert two parallel outcomes agree on every logical field. The
/// observed run additionally carries timings, which are excluded by
/// construction: only the logical schedule is compared.
fn assert_logically_identical(plain: &ParallelOutcome, observed: &ParallelOutcome, label: &str) {
    assert!(
        plain.graph.same_edge_set(&observed.graph),
        "{label}: probe changed the switched graph"
    );
    assert_eq!(plain.per_rank, observed.per_rank, "{label}: rank stats");
    assert_eq!(plain.steps, observed.steps, "{label}: steps");
    assert_eq!(plain.final_edges, observed.final_edges, "{label}: edges");
    assert_eq!(
        plain.performed(),
        observed.performed(),
        "{label}: performed"
    );
    assert_eq!(
        plain.forfeited(),
        observed.forfeited(),
        "{label}: forfeited"
    );
    assert_eq!(
        plain.telemetry.len(),
        observed.telemetry.len(),
        "{label}: step count"
    );
    for (a, b) in plain.telemetry.iter().zip(observed.telemetry.iter()) {
        assert_eq!(a.ops, b.ops, "{label}: ops");
        assert_eq!(a.started, b.started, "{label}: started");
        assert_eq!(a.performed, b.performed, "{label}: step performed");
        assert_eq!(a.served, b.served, "{label}: served");
        assert_eq!(a.blocked, b.blocked, "{label}: blocked");
        assert_eq!(a.logical_msgs, b.logical_msgs, "{label}: logical msgs");
        assert_eq!(a.packets, b.packets, "{label}: packets");
    }
}

#[test]
fn sequential_probe_identity() {
    let g = graph(21);
    let plain = Run::sequential().switches(2_000).seed(5).execute(&g);
    let observed = Run::sequential()
        .switches(2_000)
        .seed(5)
        .probe(ObsSpec::Spans)
        .execute(&g);
    assert!(plain.graph().same_edge_set(observed.graph()));
    assert_eq!(plain.performed(), observed.performed());
    assert!(plain.report().is_none());
    let report = observed.report().expect("observed run");
    assert_eq!(report.clock, "monotonic");
    assert_eq!(report.ranks, 1);
    assert!(report.phase(Phase::Sample).hist.count > 0);
    assert!(report.phase(Phase::Legality).hist.count > 0);
    assert!(report.phase(Phase::SwitchApply).hist.count > 0);
    // Sequential Algorithm 1 has no protocol phases.
    assert_eq!(report.phase(Phase::MsgWait).hist.count, 0);
    assert_eq!(report.phase(Phase::StepBarrier).hist.count, 0);
}

#[test]
fn fifo_probe_identity_across_windows() {
    let g = graph(22);
    let t = 2_000;
    for window in [1usize, 16] {
        let cfg = config(8, window);
        let plain = simulate_parallel(&g, t, &cfg);
        let observed = simulate_parallel(&g, t, &cfg.clone().with_obs(ObsSpec::Spans));
        assert_logically_identical(&plain, &observed, &format!("FIFO window {window}"));
        assert!(plain.report.is_none());
        let report = observed.report.as_ref().expect("observed run");
        assert_eq!(report.clock, "monotonic");
        assert_eq!(report.ranks, 8);
        assert!(report.phase(Phase::Sample).hist.count > 0);
        assert!(report.phase(Phase::StepBarrier).hist.count > 0);
    }
}

#[test]
fn des_probe_identity_and_virtual_time() {
    let g = graph(23);
    let t = 2_000;
    for window in [1usize, 16] {
        let cfg = config(8, window);
        let (plain, _) = des_parallel(&g, t, &cfg, &CostModel::default());
        let (observed, des_report) = des_parallel(
            &g,
            t,
            &cfg.clone().with_obs(ObsSpec::Spans),
            &CostModel::default(),
        );
        assert_logically_identical(&plain, &observed, &format!("DES window {window}"));
        // The observed DES must also still agree with the FIFO oracle.
        let fifo = simulate_parallel(&g, t, &cfg);
        assert!(fifo.graph.same_edge_set(&observed.graph));

        // DES spans are recorded on the simulated clock: the report says
        // so, and its step-boundary time is real virtual time while the
        // within-handler phases are zero-width by construction (model
        // work is instantaneous; only messaging and barriers cost).
        let report = observed.report.as_ref().expect("observed run");
        assert_eq!(report.clock, "virtual");
        assert!(report.phase(Phase::Sample).hist.count > 0);
        assert!(report.phase(Phase::StepBarrier).hist.sum_ns > 0);
        assert!(report.phase(Phase::QRefresh).hist.count > 0);
        assert!(report.wall_ns > 0);
        assert!(des_report.runtime_ns > 0.0);
    }
}

#[test]
fn threaded_probe_identity_at_one_rank() {
    // The threaded engine is only schedule-deterministic at p=1; there
    // the bit-identity claim holds exactly.
    let g = graph(24);
    let t = 1_500;
    for window in [1usize, 16] {
        let cfg = config(1, window);
        let plain = parallel_edge_switch(&g, t, &cfg);
        let observed = parallel_edge_switch(&g, t, &cfg.clone().with_obs(ObsSpec::Spans));
        assert_logically_identical(&plain, &observed, &format!("threaded p=1 window {window}"));
    }
}

#[test]
fn threaded_observed_run_reports_all_phases_and_round_trips() {
    // At p>1 the threaded schedule is OS-dependent, so the probe claim
    // is invariant-shaped: observation leaves the guarantees intact and
    // the report covers the whole protocol.
    let g = graph(25);
    let t = 2_000;
    let cfg = config(4, DEFAULT_WINDOW).with_obs(ObsSpec::Spans);
    let out = parallel_edge_switch(&g, t, &cfg);
    out.graph.check_invariants().unwrap();
    assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
    assert_eq!(out.performed() + out.forfeited(), t);

    let report = out.report.as_ref().expect("observed run");
    assert_eq!(report.clock, "monotonic");
    assert_eq!(report.ranks, 4);
    assert!(report.wall_ns > 0);
    for phase in Phase::ALL {
        if phase == Phase::BatchValidate {
            // Speculation is off here (`spec_batch = 1`); the batch
            // phase has its own observed coverage test below.
            continue;
        }
        if phase == Phase::TradeShuffle {
            // Curveball-only phase; the switch protocol never records
            // it. Covered by the trade engine's observed-run test.
            continue;
        }
        let stat = report.phase(phase);
        assert!(stat.hist.count > 0, "phase {:?} never recorded", phase);
        assert!(stat.hist.max_ns >= stat.hist.p50_ns);
    }
    // Conversation lifetimes and commit round trips cross ranks under
    // hash partitioning, so their histograms must be populated.
    let propose = report.rtt_of(MsgKind::Propose).expect("reported kind");
    assert!(propose.hist.count > 0);
    assert!(propose.hist.p50_ns > 0);
    let remove = report.rtt_of(MsgKind::CommitRemove).expect("reported kind");
    assert!(remove.hist.count > 0);
    // Comm-layer gauges come from mpilite: the window was occupied and
    // the receive queues were observed.
    assert!(report.gauge("window-occupancy").expect("gauge").samples > 0);
    assert!(report.gauge("recv-queue-depth").expect("gauge").samples > 0);
}

#[test]
fn speculative_batch_observed_run_covers_batch_phase() {
    // With speculation on, the owner-side `BatchPropose` serve phase and
    // the speculative round-trip histogram populate, the report's spec
    // counters equal the per-rank sums — and the probe-identity claim
    // still holds on the speculative schedule.
    let g = graph(27);
    let t = 2_000;
    let cfg = config(4, DEFAULT_WINDOW).with_spec_batch(8);
    let plain = simulate_parallel(&g, t, &cfg);
    let observed = simulate_parallel(&g, t, &cfg.clone().with_obs(ObsSpec::Spans));
    assert_logically_identical(&plain, &observed, "FIFO spec batch");
    let report = observed.report.as_ref().expect("observed run");
    assert!(
        report.phase(Phase::BatchValidate).hist.count > 0,
        "no speculative batch was ever served"
    );
    let batch = report.rtt_of(MsgKind::BatchPropose).expect("reported kind");
    assert!(batch.hist.count > 0);
    let committed: u64 = observed.per_rank.iter().map(|s| s.spec_committed).sum();
    let rolled: u64 = observed.per_rank.iter().map(|s| s.spec_rolled_back).sum();
    assert!(committed > 0, "no speculation was ever confirmed");
    assert_eq!(report.spec_committed, committed);
    assert_eq!(report.spec_rolled_back, rolled);
}

#[test]
fn curveball_observed_run_is_probe_identical_and_covers_trade_phase() {
    // The probe-identity claim extends to the Curveball trade engines:
    // probes draw no randomness, so observed runs replay the exact
    // trade schedule — and the report covers the trade-shuffle phase
    // that the switch protocol never records.
    let g = graph(28);
    let budget = TradeBudget::Trades(1_200);
    let cfg = config(4, DEFAULT_WINDOW);

    let plain = simulate_curveball(&g, budget, &cfg);
    let observed = simulate_curveball(&g, budget, &cfg.clone().with_obs(ObsSpec::Spans));
    assert_logically_identical(&plain, &observed, "FIFO curveball");
    let report = observed.report.as_ref().expect("observed run");
    assert!(report.ranks == 4 && report.wall_ns > 0);
    // The parallel driver spans the shuffle itself; reassignment is
    // carried by TradeHome inserts, which have no span of their own.
    assert!(
        report.phase(Phase::TradeShuffle).hist.count > 0,
        "no trade shuffle was ever recorded"
    );

    let eng_plain = parallel_curveball(&g, budget, &cfg);
    let eng_obs = parallel_curveball(&g, budget, &cfg.clone().with_obs(ObsSpec::Spans));
    assert_logically_identical(&eng_plain, &eng_obs, "threaded curveball");
    let report = eng_obs.report.as_ref().expect("observed run");
    assert_eq!(report.clock, "monotonic");
    assert!(report.phase(Phase::TradeShuffle).hist.count > 0);
    assert!(
        report.phase(Phase::StepBarrier).hist.count > 0,
        "pass barrier never recorded"
    );
}

#[test]
fn run_report_json_schema_is_stable() {
    // The golden schema `repro trace` exports and downstream tooling
    // parses: field names, array order and per-entry keys are pinned
    // here; widening the schema is fine, renames are a breaking change.
    let g = graph(26);
    let cfg = config(4, DEFAULT_WINDOW).with_obs(ObsSpec::Spans);
    let out = simulate_parallel(&g, 1_000, &cfg);
    let v = out.report.as_ref().expect("observed run").to_json();

    // Key *sets* are compared sorted: the real serde_json orders object
    // keys alphabetically, the offline stub preserves insertion order.
    fn keys(v: &serde_json::Value) -> Vec<String> {
        let mut out: Vec<String> = v
            .as_object()
            .expect("object")
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        out.sort();
        out
    }

    assert_eq!(
        keys(&v),
        vec![
            "clock",
            "gauges",
            "phases",
            "ranks",
            "rtt",
            "spec_committed",
            "spec_rolled_back",
            "wall_ns"
        ],
        "top-level keys changed"
    );
    assert_eq!(v["clock"].as_str(), Some("monotonic"));
    assert_eq!(v["ranks"].as_u64(), Some(4));

    let phases = v["phases"].as_array().unwrap();
    let labels: Vec<&str> = phases
        .iter()
        .map(|p| p["phase"].as_str().unwrap())
        .collect();
    assert_eq!(
        labels,
        vec![
            "sample",
            "legality",
            "msg-wait",
            "switch-apply",
            "step-barrier",
            "q-refresh",
            "local-fastpath",
            "batch-validate",
            "trade-shuffle"
        ],
        "phase labels or order changed"
    );
    for p in phases {
        assert_eq!(
            keys(&p["hist"]),
            vec!["count", "max_ns", "p50_ns", "p90_ns", "p99_ns", "sum_ns"],
            "histogram summary keys changed"
        );
    }

    let rtt = v["rtt"].as_array().unwrap();
    let kinds: Vec<&str> = rtt.iter().map(|r| r["kind"].as_str().unwrap()).collect();
    assert_eq!(
        kinds,
        vec![
            "propose",
            "validate",
            "commit-add",
            "commit-remove",
            "batch-propose"
        ],
        "round-trip kinds or order changed"
    );

    let gauges = v["gauges"].as_array().unwrap();
    let names: Vec<&str> = gauges
        .iter()
        .map(|g| g["gauge"].as_str().unwrap())
        .collect();
    assert_eq!(
        names,
        vec![
            "window-occupancy",
            "serving-depth",
            "recv-queue-depth",
            "park"
        ],
        "gauge names or order changed"
    );
    for g in gauges {
        assert_eq!(keys(g), vec!["gauge", "mean", "peak", "samples"]);
    }
}
