//! Failure-injection and edge-case integration tests: degenerate graphs,
//! starved partitions, dense graphs with heavy abort traffic, and the
//! quota-policy ablation.

use edge_switching::core::config::QuotaPolicy;
use edge_switching::core::parallel::{parallel_edge_switch, simulate_parallel};
use edge_switching::core::variants::{sequential_edge_switch_connected, sequential_exact_visit};
use edge_switching::prelude::*;

#[test]
fn star_graph_forfeits_in_parallel_without_wedging() {
    // No legal switch exists on a star; every rank must forfeit its
    // quota (bounded retries), not hang.
    let g = {
        let mut g = Graph::new(40);
        for v in 1..40u64 {
            g.add_edge(Edge::new(0, v)).unwrap();
        }
        g
    };
    let cfg = ParallelConfig::new(4)
        .with_scheme(SchemeKind::HashDivision)
        .with_step_size(StepSize::SingleStep)
        .with_seed(1);
    let out = simulate_parallel(&g, 6, &cfg);
    assert_eq!(out.performed(), 0);
    assert_eq!(out.forfeited(), 6);
    assert!(
        out.graph.same_edge_set(&g),
        "degenerate graph must be untouched"
    );
}

#[test]
fn empty_and_single_edge_graphs() {
    for m in [0usize, 1] {
        let mut g = Graph::new(4);
        if m == 1 {
            g.add_edge(Edge::new(0, 1)).unwrap();
        }
        let cfg = ParallelConfig::new(2).with_seed(2);
        let out = simulate_parallel(&g, 10, &cfg);
        assert_eq!(out.performed(), 0);
        assert_eq!(out.graph.num_edges(), m);
    }
}

#[test]
fn near_complete_graph_mostly_aborts_but_terminates() {
    // K12 minus one edge: only one switch outcome is ever legal.
    let n = 12u64;
    let mut g = Graph::new(n as usize);
    for a in 0..n {
        for b in (a + 1)..n {
            if !(a == 0 && b == 1) {
                g.add_edge(Edge::new(a, b)).unwrap();
            }
        }
    }
    let cfg = ParallelConfig::new(3)
        .with_step_size(StepSize::FractionOfT(2))
        .with_seed(3);
    let out = simulate_parallel(&g, 30, &cfg);
    out.graph.check_invariants().unwrap();
    assert_eq!(out.performed() + out.forfeited(), 30);
    let aborts: u64 = out.per_rank.iter().map(|s| s.aborts()).sum();
    assert!(
        aborts > 20,
        "dense graph should reject heavily, got {aborts}"
    );
}

#[test]
fn uniform_quota_ablation_still_correct_but_less_similar() {
    // Correctness must hold under the ablated policy; similarity is
    // allowed to degrade (that is the point of the ablation).
    let mut rng = root_rng(4);
    let g = contact_network(
        ContactParams {
            n: 800,
            community_size: 40,
            intra_degree: 12.0,
            inter_degree: 2.0,
        },
        &mut rng,
    );
    let t = 3_000u64;
    let cfg = ParallelConfig::new(8)
        .with_quota_policy(QuotaPolicy::Uniform)
        .with_step_size(StepSize::FractionOfT(10))
        .with_seed(5);
    let out = simulate_parallel(&g, t, &cfg);
    out.graph.check_invariants().unwrap();
    assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
    assert_eq!(out.performed() + out.forfeited(), t);
}

#[test]
fn exact_visit_on_sparse_graph_handles_leftovers() {
    // A path graph has few legal switches among "original" edges as the
    // pool drains; the variant must terminate with bounded shortfall.
    let mut rng = root_rng(6);
    let n = 200u64;
    let mut g = Graph::from_edges(n as usize, (0..n - 1).map(|i| Edge::new(i, i + 1))).unwrap();
    let out = sequential_exact_visit(&mut g, 1.0, &mut rng);
    g.check_invariants().unwrap();
    assert!(out.performed > 0);
    assert!(out.visit_rate() > 0.5, "visit rate {}", out.visit_rate());
}

#[test]
fn connectivity_constraint_on_a_tree_rejects_everything() {
    // Every edge of a tree is a bridge; a straight/cross switch removes
    // two bridges and can only reconnect endpoints in limited ways —
    // most operations must be rejected, and connectivity must survive
    // regardless.
    let mut rng = root_rng(7);
    let n = 64u64;
    let mut g = Graph::from_edges(n as usize, (1..n).map(|v| Edge::new((v - 1) / 2, v))).unwrap();
    let out = sequential_edge_switch_connected(&mut g, 10, &mut rng);
    assert!(is_connected(&g));
    assert!(out.connectivity_rejects > 0 || out.performed == 10);
}

#[test]
fn threaded_engine_survives_many_tiny_steps() {
    // Step-boundary storm: hundreds of steps with single-digit quotas.
    let mut rng = root_rng(8);
    let g = erdos_renyi_gnm(200, 800, &mut rng);
    let cfg = ParallelConfig::new(4)
        .with_step_size(StepSize::Ops(3))
        .with_seed(9);
    let out = parallel_edge_switch(&g, 300, &cfg);
    assert_eq!(out.steps, 100);
    assert_eq!(out.performed() + out.forfeited(), 300);
    out.graph.check_invariants().unwrap();
}

#[test]
fn partition_starvation_recovers_across_steps() {
    // HP-D on labels 0..n with p=7: some partitions start tiny. Quotas
    // follow |E_i|, so starved partitions get little work and the run
    // completes.
    let mut rng = root_rng(10);
    // Skewed labels: clique on multiples of 7 plus sparse rest.
    let mut g = erdos_renyi_gnm(140, 300, &mut rng);
    for a in (0..140u64).step_by(7) {
        for b in ((a + 7)..140).step_by(7) {
            let _ = g.add_edge(Edge::new(a, b));
        }
    }
    let cfg = ParallelConfig::new(7)
        .with_scheme(SchemeKind::HashDivision)
        .with_step_size(StepSize::FractionOfT(10))
        .with_seed(11);
    let t = 1_000u64;
    let out = simulate_parallel(&g, t, &cfg);
    assert_eq!(out.performed() + out.forfeited(), t);
    assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
}
