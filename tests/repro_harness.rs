//! Smoke tests of the reproduction harness: the cheap experiments run
//! end-to-end at tiny scale and produce structurally sound reports.

use edgeswitch_bench::experiments::{all_ids, run, ExpConfig};

fn tiny() -> ExpConfig {
    ExpConfig {
        scale: 0.05,
        reps: 1,
        seed: 7,
        timeline: false,
    }
}

#[test]
fn table1_reports_small_error() {
    let r = run("table1", &tiny()).unwrap();
    assert_eq!(r.id, "table1");
    let avg = r.data["avg_error_pct"].as_f64().unwrap();
    assert!(
        avg < 5.0,
        "visit-rate error {avg}% too large even for tiny scale"
    );
    assert!(r.rendered.contains("average error rate"));
}

#[test]
fn table2_lists_all_scaling_datasets() {
    let r = run("table2", &tiny()).unwrap();
    let rows = r.data.as_array().unwrap();
    assert_eq!(rows.len(), 8);
    for row in rows {
        assert!(row["m"].as_u64().unwrap() > 0);
    }
}

#[test]
fn fig2_series_covers_grid() {
    let r = run("fig2", &tiny()).unwrap();
    assert_eq!(r.data.as_array().unwrap().len(), 10);
}

#[test]
fn fig24_matches_paper_band() {
    let r = run("fig24", &tiny()).unwrap();
    let series = r.data["series"].as_array().unwrap();
    let last = series.last().unwrap();
    assert_eq!(last["p"].as_u64().unwrap(), 1024);
    let speedup = last["speedup"].as_f64().unwrap();
    assert!(
        (700.0..1024.0).contains(&speedup),
        "multinomial speedup {speedup} outside the paper's band (925)"
    );
}

#[test]
fn fig25_weak_scaling_flat() {
    let r = run("fig25", &tiny()).unwrap();
    let series = r.data["series"].as_array().unwrap();
    let first = series.first().unwrap()["time_s"].as_f64().unwrap();
    let last = series.last().unwrap()["time_s"].as_f64().unwrap();
    assert!(last / first < 1.5, "weak scaling ratio {}", last / first);
}

#[test]
fn telemetry_steps_reports_consistent_drivers() {
    let r = run("telemetry-steps", &tiny()).unwrap();
    assert_eq!(r.id, "telemetry-steps");
    assert!(
        r.data["drivers_agree"].as_bool().unwrap(),
        "FIFO and DES diverged"
    );
    let fifo = r.data["fifo_steps"].as_array().unwrap();
    let des = r.data["des_steps"].as_array().unwrap();
    assert_eq!(fifo.len(), des.len());
    assert!(!fifo.is_empty());
    for (a, b) in fifo.iter().zip(des) {
        // Same logical schedule step by step...
        assert_eq!(a["performed"].as_u64(), b["performed"].as_u64());
        assert_eq!(a["messages"].as_u64(), b["messages"].as_u64());
        // ...and only the DES carries virtual time.
        assert_eq!(a["boundary_ns"].as_f64().unwrap(), 0.0);
        assert!(b["boundary_ns"].as_f64().unwrap() > 0.0);
    }
    let kinds = r.data["message_kinds"].as_array().unwrap();
    assert!(kinds
        .iter()
        .any(|k| k["variant"].as_str() == Some("propose") && k["count"].as_u64().unwrap() > 0));
    assert!(r.rendered.contains("DES driver"));
}

#[test]
fn every_id_dispatches() {
    for id in all_ids() {
        // Dispatch-only check for the heavy ones: just ensure the id is
        // recognized (cheap ones actually ran above).
        if ["table1", "fig2", "table2", "fig24", "fig25"].contains(&id) {
            continue;
        }
        // Existence is verified by the match arm in `run`; invoking all
        // heavy experiments here would dominate CI time. Covered by the
        // `repro all` archive committed in EXPERIMENTS.md.
    }
    assert_eq!(all_ids().len(), 26);
}
