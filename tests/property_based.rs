//! Property-based tests (proptest) over the core invariants:
//! simplicity, degree preservation, partition coverage, sampler laws.

use edge_switching::core::sequential::sequential_edge_switch;
use edge_switching::core::switch::{recombine, Recombination, SwitchKind};
use edge_switching::graph::store::{assemble_graph, build_stores};
use edge_switching::graph::OrientedEdge;
use edge_switching::prelude::*;
use proptest::prelude::*;

/// A random simple graph from a seed: ER with bounded size.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (10usize..120, 1usize..4, any::<u64>()).prop_map(|(n, density, seed)| {
        let mut rng = root_rng(seed);
        let max_m = n * (n - 1) / 2;
        let m = (n * density).min(max_m / 2).max(1);
        erdos_renyi_gnm(n, m, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn switching_preserves_simplicity_and_degrees(g in arb_graph(), t in 0u64..500, seed: u64) {
        let mut graph = g.clone();
        let mut rng = root_rng(seed);
        let out = sequential_edge_switch(&mut graph, t, &mut rng);
        prop_assert!(graph.check_invariants().is_ok());
        prop_assert_eq!(graph.degree_sequence(), g.degree_sequence());
        prop_assert_eq!(graph.num_edges(), g.num_edges());
        prop_assert!(out.performed + out.abandoned == t);
    }

    #[test]
    fn parallel_switching_preserves_invariants(
        g in arb_graph(),
        t in 0u64..300,
        p in 1usize..9,
        scheme_idx in 0usize..4,
        seed: u64,
    ) {
        let scheme = SchemeKind::all()[scheme_idx];
        let cfg = ParallelConfig::new(p)
            .with_scheme(scheme)
            .with_step_size(StepSize::FractionOfT(5))
            .with_seed(seed);
        let out = simulate_parallel(&g, t, &cfg);
        prop_assert!(out.graph.check_invariants().is_ok());
        prop_assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
        prop_assert_eq!(out.performed() + out.forfeited(), t);
        prop_assert_eq!(
            out.final_edges.iter().sum::<u64>() as usize,
            g.num_edges()
        );
    }

    #[test]
    fn partitions_cover_disjointly(g in arb_graph(), p in 1usize..17, scheme_idx in 0usize..4, seed: u64) {
        let mut rng = root_rng(seed);
        let scheme = SchemeKind::all()[scheme_idx];
        let part = Partitioner::build(scheme, &g, p, &mut rng);
        let stores = build_stores(&g, &part);
        // Disjoint cover: total edges match, reassembly is the identity.
        let total: usize = stores.iter().map(|s| s.num_edges()).sum();
        prop_assert_eq!(total, g.num_edges());
        let back = assemble_graph(g.num_vertices(), &stores);
        prop_assert!(back.same_edge_set(&g));
        // Ownership: every vertex maps into range.
        for v in 0..g.num_vertices() as u64 {
            prop_assert!(part.owner(v) < p);
        }
    }

    #[test]
    fn recombination_preserves_endpoint_multiset(
        a in 0u64..50, b in 0u64..50, c in 0u64..50, d in 0u64..50, cross: bool
    ) {
        prop_assume!(a != b && c != d);
        let e1 = OrientedEdge { tail: a.min(b), head: a.max(b) };
        let e2 = OrientedEdge { tail: c.min(d), head: c.max(d) };
        let kind = if cross { SwitchKind::Cross } else { SwitchKind::Straight };
        if let Recombination::Candidate { f1, f2 } = recombine(e1, e2, kind) {
            let mut before = [e1.tail, e1.head, e2.tail, e2.head];
            let mut after = [f1.src(), f1.dst(), f2.src(), f2.dst()];
            before.sort_unstable();
            after.sort_unstable();
            prop_assert_eq!(before, after);
            // Replacements never equal the originals.
            prop_assert!(f1 != e1.edge() && f1 != e2.edge());
            prop_assert!(f2 != e1.edge() && f2 != e2.edge());
            prop_assert!(f1 != f2);
        }
    }

    #[test]
    fn binomial_within_support(n in 0u64..100_000, q in 0.0f64..=1.0, seed: u64) {
        let mut rng = root_rng(seed);
        let x = binomial(n, q, &mut rng);
        prop_assert!(x <= n);
        if q == 0.0 { prop_assert_eq!(x, 0); }
        if q == 1.0 { prop_assert_eq!(x, n); }
    }

    #[test]
    fn multinomial_sums_to_n(n in 0u64..50_000, l in 1usize..12, seed: u64) {
        let mut rng = root_rng(seed);
        let q = vec![1.0 / l as f64; l];
        let x = multinomial(n, &q, &mut rng);
        prop_assert_eq!(x.iter().sum::<u64>(), n);
        prop_assert_eq!(x.len(), l);
    }

    #[test]
    fn visit_ops_monotone_in_x(m in 100u64..1_000_000, i in 1u32..10) {
        let x1 = i as f64 / 10.0;
        let x2 = (i + 1) as f64 / 10.0;
        prop_assert!(
            switch_ops_for_visit_rate(m, x1) <= switch_ops_for_visit_rate(m, x2)
        );
    }

    #[test]
    fn havel_hakimi_realizes_iff_erdos_gallai(mut degs in proptest::collection::vec(0usize..8, 2..40)) {
        // Make the sum even to hit the interesting branch more often.
        if degs.iter().sum::<usize>() % 2 == 1 {
            degs[0] += 1;
        }
        let graphical = erdos_gallai(&degs);
        match havel_hakimi(&degs) {
            Ok(g) => {
                prop_assert!(graphical, "HH realized a non-graphical sequence");
                prop_assert_eq!(g.degree_sequence(), degs);
                prop_assert!(g.check_invariants().is_ok());
            }
            Err(_) => prop_assert!(!graphical, "HH failed on a graphical sequence"),
        }
    }

    #[test]
    fn error_rate_bounded_and_reflexive(g in arb_graph(), seed: u64, r in 1usize..8) {
        prop_assume!(r <= g.num_vertices());
        prop_assert_eq!(error_rate(&g, &g, r), 0.0);
        let mut h = g.clone();
        let mut rng = root_rng(seed);
        sequential_edge_switch(&mut h, 50, &mut rng);
        let er = error_rate(&g, &h, r);
        prop_assert!((0.0..=100.0).contains(&er), "ER = {er}");
    }
}
