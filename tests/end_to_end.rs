//! Cross-crate integration: the full pipeline from generation through
//! sequential and distributed switching to similarity measurement.

use edge_switching::core::parallel::{parallel_edge_switch, simulate_parallel};
use edge_switching::core::sequential::sequential_edge_switch;
use edge_switching::prelude::*;

fn clustered_graph(seed: u64) -> Graph {
    let mut rng = root_rng(seed);
    contact_network(
        ContactParams {
            n: 1200,
            community_size: 50,
            intra_degree: 15.0,
            inter_degree: 3.0,
        },
        &mut rng,
    )
}

#[test]
fn sequential_and_parallel_agree_statistically() {
    // The paper's similarity criterion: ER(seq, par) should be in the
    // same ballpark as ER(seq, seq) for a reasonable step size.
    let g = clustered_graph(1);
    let t = switch_ops_for_visit_rate(g.num_edges() as u64, 1.0);

    let mut gs1 = g.clone();
    let mut rng1 = root_rng(100);
    sequential_edge_switch(&mut gs1, t, &mut rng1);
    let mut gs2 = g.clone();
    let mut rng2 = root_rng(200);
    sequential_edge_switch(&mut gs2, t, &mut rng2);
    let baseline = error_rate(&gs1, &gs2, 20);

    let cfg = ParallelConfig::new(16)
        .with_scheme(SchemeKind::HashUniversal)
        .with_step_size(StepSize::FractionOfT(100))
        .with_seed(300);
    let out = simulate_parallel(&g, t, &cfg);
    let par = error_rate(&gs1, &out.graph, 20);

    assert!(
        par < 2.0 * baseline + 1.0,
        "ER(seq,par) = {par:.3}% vs ER(seq,seq) = {baseline:.3}%"
    );
}

#[test]
fn threaded_engine_full_pipeline() {
    let g = clustered_graph(2);
    let before_cc = {
        let mut rng = root_rng(5);
        average_clustering_sampled(&g, 600, &mut rng)
    };
    let t = switch_ops_for_visit_rate(g.num_edges() as u64, 1.0);
    let cfg = ParallelConfig::new(6)
        .with_scheme(SchemeKind::Consecutive)
        .with_step_size(StepSize::FractionOfT(50))
        .with_seed(7);
    let out = parallel_edge_switch(&g, t, &cfg);

    out.graph.check_invariants().unwrap();
    assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
    assert!(out.visit_rate() > 0.95, "visit rate {}", out.visit_rate());

    // Randomization must destroy the community clustering.
    let mut rng = root_rng(6);
    let after_cc = average_clustering_sampled(&out.graph, 600, &mut rng);
    assert!(
        after_cc < before_cc / 3.0,
        "clustering {before_cc} -> {after_cc}: randomization failed"
    );
}

#[test]
fn all_schemes_produce_valid_switched_graphs() {
    let g = clustered_graph(3);
    let t = 2_000u64;
    for scheme in SchemeKind::all() {
        let cfg = ParallelConfig::new(5)
            .with_scheme(scheme)
            .with_step_size(StepSize::FractionOfT(10))
            .with_seed(11);
        let out = simulate_parallel(&g, t, &cfg);
        out.graph.check_invariants().unwrap();
        assert_eq!(out.graph.degree_sequence(), g.degree_sequence(), "{scheme}");
        assert_eq!(out.performed() + out.forfeited(), t, "{scheme}");
    }
}

#[test]
fn havel_hakimi_plus_switching_generates_random_graph() {
    let mut rng = root_rng(4);
    let seq = power_law_sequence(400, 2.5, 2, 50, &mut rng);
    let g0 = havel_hakimi(&seq).unwrap();
    let t = switch_ops_for_visit_rate(g0.num_edges() as u64, 1.0);

    let cfg = ParallelConfig::new(4).with_seed(21);
    let out = parallel_edge_switch(&g0, t, &cfg);
    assert_eq!(out.graph.degree_sequence(), seq);
    // Nearly every edge replaced.
    let shared = out.graph.edges().filter(|&e| g0.has_edge(e)).count();
    assert!(
        (shared as f64) < 0.3 * g0.num_edges() as f64,
        "randomization left {shared} of {} original edges",
        g0.num_edges()
    );
}

#[test]
fn visit_rate_conversion_round_trips_through_both_algorithms() {
    let mut rng = root_rng(8);
    let g = erdos_renyi_gnm(1500, 9000, &mut rng);
    for &x in &[0.25, 0.6, 0.95] {
        let t = switch_ops_for_visit_rate(g.num_edges() as u64, x);
        let mut gs = g.clone();
        let seq = sequential_edge_switch(&mut gs, t, &mut rng);
        assert!(
            (seq.visit_rate() - x).abs() < 0.04,
            "seq x={x}: {}",
            seq.visit_rate()
        );

        let cfg = ParallelConfig::new(8)
            .with_scheme(SchemeKind::HashDivision)
            .with_step_size(StepSize::FractionOfT(20))
            .with_seed(x.to_bits());
        let out = simulate_parallel(&g, t, &cfg);
        assert!(
            (out.visit_rate() - x).abs() < 0.04,
            "par x={x}: {}",
            out.visit_rate()
        );
    }
}

#[test]
fn des_and_logical_sim_agree_on_invariants() {
    let g = clustered_graph(9);
    let t = 3000;
    let cfg = ParallelConfig::new(12)
        .with_scheme(SchemeKind::HashMultiplication)
        .with_step_size(StepSize::FractionOfT(6))
        .with_seed(31);
    let sim = simulate_parallel(&g, t, &cfg);
    let (des_out, report) = des_parallel(&g, t, &cfg, &CostModel::default());
    for out in [&sim, &des_out] {
        out.graph.check_invariants().unwrap();
        assert_eq!(out.graph.degree_sequence(), g.degree_sequence());
        assert_eq!(out.performed() + out.forfeited(), t);
    }
    assert!(report.runtime_ns > 0.0);
}
